//! Before/after kernel pairs for the steady-state hot-path optimization.
//!
//! "Before" is a faithful re-implementation of the seed tree's kernels:
//! one radix-2 FFT dispatch per lane, a freshly allocated buffer per
//! window/lane/message, and allocating matrix products. "After" is the
//! current hot path: batched mixed-radix FFTs over unit-stride lanes,
//! persistent workspaces, `*_into` matrix kernels and pooled
//! redistribution packing. [`report`] times every pair at the paper's
//! sizes (`N = 128`, `K = 512`, `J = 16`, `M = 6`) and renders the
//! `BENCH_kernels.json` document.

use stap::core::cfar::{self, CfarKind, CfarScratch, Detection};
use stap::core::doppler::DopplerProcessor;
use stap::core::params::StapParams;
use stap::core::pulse::{chirp, PulseCompressor, PulseScratch};
use stap::cube::{AxisPartition, CCube, RCube, RedistBlock, RedistPlan, SharedBufferPool};
use stap::math::fft::{Fft, FftScratch};
use stap::math::gemm::{gemm_planar_into, hermitian_matmul_interleaved_into, PlanarMat};
use stap::math::qr::{qr_r, qr_update_with, QrScratch};
use stap::math::simd::{self, Backend};
use stap::math::{flops, CMat, Cx};
use stap_util::{Bench, BenchResult, Json};

/// Deterministic complex test data.
pub fn det_cx(i: usize, j: usize, k: usize) -> Cx {
    let mut s = (i as u64)
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add((j as u64).wrapping_mul(0xBF58476D1CE4E5B9))
        .wrapping_add(k as u64)
        | 1;
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    Cx::new(
        (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5,
        (s >> 17) as f64 / (1u64 << 47) as f64 - 0.5,
    )
}

/// The seed tree's Doppler kernel: per-lane windowing into freshly
/// allocated buffers and one radix-2 FFT dispatch per staggered window.
pub struct ReferenceDoppler {
    n: usize,
    stagger: usize,
    window: Vec<f64>,
    correction: Vec<f64>,
    fft: Fft,
}

impl ReferenceDoppler {
    /// Builds the reference processor for `params`.
    pub fn new(params: &StapParams) -> Self {
        let n = params.n_pulses;
        let wlen = n - params.stagger;
        ReferenceDoppler {
            n,
            stagger: params.stagger,
            window: params.window.sample(wlen),
            correction: (0..params.k_range)
                .map(|k| {
                    ((k + 1) as f64 / params.k_range as f64).powf(params.range_correction_exponent)
                })
                .collect(),
            fft: Fft::new_radix2(n),
        }
    }

    /// The pre-optimization `process_rows`: allocates two window buffers
    /// per `(cell, channel)` lane and runs each through its own FFT call.
    pub fn process_rows(&self, slab: &CCube, k_offset: usize, out: &mut CCube) {
        let [k_local, j_ch, n] = slab.shape();
        assert_eq!(out.shape(), [k_local, 2 * j_ch, n]);
        let s = self.stagger;
        let wlen = n - s;
        for k in 0..k_local {
            let corr = self.correction[k_offset + k];
            for j in 0..j_ch {
                let lane = slab.lane(k, j);
                let mut w0 = vec![Cx::default(); self.n];
                for i in 0..wlen {
                    w0[i] = lane[i].scale(self.window[i] * corr);
                }
                self.fft.forward(&mut w0);
                out.lane_mut(k, j).copy_from_slice(&w0);
                let mut w1 = vec![Cx::default(); self.n];
                for i in 0..wlen {
                    w1[i] = lane[s + i].scale(self.window[i] * corr);
                }
                self.fft.forward(&mut w1);
                out.lane_mut(k, j_ch + j).copy_from_slice(&w1);
            }
        }
    }
}

/// The seed tree's pulse compression: per-lane buffer clone, radix-2
/// forward/inverse dispatches, and a freshly allocated output cube.
pub struct ReferencePulse {
    k: usize,
    fft: Fft,
    filter: Vec<Cx>,
}

impl ReferencePulse {
    /// Builds the reference compressor for `params`.
    pub fn new(params: &StapParams) -> Self {
        let k = params.k_range;
        let fft = Fft::new_radix2(k);
        let replica = chirp(params.replica_len);
        let mut padded = vec![Cx::default(); k];
        padded[..replica.len()].copy_from_slice(&replica);
        fft.forward(&mut padded);
        let filter = padded.iter().map(|x| x.conj()).collect();
        ReferencePulse { k, fft, filter }
    }

    /// The pre-optimization `process`: allocates the output cube and one
    /// spectrum buffer per `(bin, beam)` lane.
    pub fn process(&self, beamformed: &CCube) -> RCube {
        let [n, m, k] = beamformed.shape();
        assert_eq!(k, self.k);
        let mut out = RCube::zeros([n, m, k]);
        for bin in 0..n {
            for beam in 0..m {
                let mut buf = beamformed.lane(bin, beam).to_vec();
                self.fft.forward(&mut buf);
                for (x, f) in buf.iter_mut().zip(&self.filter) {
                    *x *= *f;
                }
                self.fft.inverse(&mut buf);
                let lane = out.lane_mut(bin, beam);
                for (o, v) in lane.iter_mut().zip(&buf) {
                    *o = v.norm_sqr();
                }
            }
        }
        out
    }
}

/// The seed tree's redistribution pack: a per-element strided gather
/// (one 3-D index computation and one push per element), before the run
/// fusion / transpose blocking of `Cube::extract_permuted_into`.
pub fn reference_pack(plan: &RedistPlan, block: &RedistBlock, local: &CCube) -> Vec<Cx> {
    let own = plan.src_part.range_of(block.src);
    let mut r = block.src_ranges.clone();
    r[plan.src_part.axis] =
        (r[plan.src_part.axis].start - own.start)..(r[plan.src_part.axis].end - own.start);
    let perm = plan.perm;
    let out_shape = [r[perm[0]].len(), r[perm[1]].len(), r[perm[2]].len()];
    let mut data = Vec::with_capacity(block.elements);
    for y0 in 0..out_shape[0] {
        for y1 in 0..out_shape[1] {
            for y2 in 0..out_shape[2] {
                let mut x = [0usize; 3];
                x[perm[0]] = r[perm[0]].start + y0;
                x[perm[1]] = r[perm[1]].start + y1;
                x[perm[2]] = r[perm[2]].start + y2;
                data.push(local[(x[0], x[1], x[2])]);
            }
        }
    }
    data
}

/// The seed tree's recursive QR update: interleaved `Cx` storage, a
/// fresh `R` clone, a fresh column snapshot per reflector, and
/// strided column walks through the new-row block.
pub fn reference_qr_update(r_old: &CMat, forget: f64, new_rows: &CMat) -> CMat {
    let n = r_old.rows();
    let cols = r_old.cols();
    assert!(
        cols >= n,
        "r_old must have at least as many columns as rows"
    );
    assert_eq!(new_rows.cols(), cols, "new_rows column mismatch");
    let s = new_rows.rows();

    let mut r = r_old.scale(forget);
    let mut x = new_rows.clone();
    flops::add(2 * (n * n) as u64);

    for k in 0..n {
        let mut norm_sqr = r[(k, k)].norm_sqr();
        for i in 0..s {
            norm_sqr += x[(i, k)].norm_sqr();
        }
        let norm = norm_sqr.sqrt();
        if norm == 0.0 {
            continue;
        }
        let d = r[(k, k)];
        let phase = if d.abs() == 0.0 {
            Cx::real(1.0)
        } else {
            d.scale(1.0 / d.abs())
        };
        let alpha = -phase.scale(norm);
        let v0 = d - alpha;
        let vx: Vec<Cx> = (0..s).map(|i| x[(i, k)]).collect();
        let mut vnorm_sqr = v0.norm_sqr();
        for v in &vx {
            vnorm_sqr += v.norm_sqr();
        }
        if vnorm_sqr == 0.0 {
            continue;
        }
        let beta = 2.0 / vnorm_sqr;
        for j in k + 1..cols {
            let mut w = v0.conj() * r[(k, j)];
            for (i, v) in vx.iter().enumerate() {
                w = w.mul_add(v.conj(), x[(i, j)]);
            }
            let wb = w.scale(beta);
            r[(k, j)] -= v0 * wb;
            for (i, v) in vx.iter().enumerate() {
                x[(i, j)] -= *v * wb;
            }
        }
        r[(k, k)] = alpha;
        for i in 0..s {
            x[(i, k)] = Cx::default();
        }
        flops::add((cols - k) as u64 * (2 * flops::CMAC * s as u64 + 20) + 4 * s as u64 + 30);
    }
    r
}

/// The seed tree's CFAR detector, frozen verbatim: both reference
/// half-windows are *recomputed* for every test cell — O(K·W) per lane
/// — where the live [`cfar::cfar_lane_kind`] maintains rolling sums
/// (initial sum + slide, O(K + W)). Kept as the bench "before" path and
/// as the oracle for the rolling-window equivalence test: the set of
/// reference cells per test cell is identical, so thresholds agree to
/// rounding for all three [`CfarKind`] variants including clamped
/// edges. (No flop accounting here — this is a reference, not a
/// modeled kernel.)
pub fn reference_cfar_lane(
    params: &StapParams,
    kind: CfarKind,
    lane: &[f64],
    bin: usize,
    beam: usize,
    out: &mut Vec<Detection>,
) {
    let k = lane.len();
    let half = params.cfar_window / 2;
    let g = params.cfar_guard;
    for t in 0..k {
        // Reference cells: [t-g-half, t-g) and (t+g, t+g+half], clamped.
        let mut lo_sum = 0.0;
        let mut lo_count = 0usize;
        let lo_end = t.saturating_sub(g);
        let lo_start = t.saturating_sub(g + half);
        for &v in &lane[lo_start..lo_end] {
            lo_sum += v;
            lo_count += 1;
        }
        let mut hi_sum = 0.0;
        let mut hi_count = 0usize;
        let hi_start = (t + g + 1).min(k);
        let hi_end = (t + g + 1 + half).min(k);
        for &v in &lane[hi_start..hi_end] {
            hi_sum += v;
            hi_count += 1;
        }
        if lo_count + hi_count == 0 {
            continue;
        }
        let stat = match kind {
            CfarKind::CellAveraging => (lo_sum + hi_sum) / (lo_count + hi_count) as f64,
            CfarKind::GreatestOf | CfarKind::SmallestOf => {
                // Means of each half; a fully clamped-away half defers
                // to the other.
                let lo = (lo_count > 0).then(|| lo_sum / lo_count as f64);
                let hi = (hi_count > 0).then(|| hi_sum / hi_count as f64);
                match (lo, hi, kind) {
                    (Some(a), Some(b), CfarKind::GreatestOf) => a.max(b),
                    (Some(a), Some(b), CfarKind::SmallestOf) => a.min(b),
                    (Some(a), None, _) | (None, Some(a), _) => a,
                    _ => unreachable!("one side is non-empty"),
                }
            }
        };
        let threshold = params.cfar_scale * stat;
        if lane[t] > threshold {
            out.push(Detection {
                bin,
                beam,
                range: t,
                power: lane[t],
                threshold,
            });
        }
    }
}

/// One before/after measurement.
pub struct Pair {
    /// Kernel name (stable across PRs; keys `BENCH_kernels.json`).
    pub name: String,
    /// Seed-path timing.
    pub before: BenchResult,
    /// Optimized-path timing.
    pub after: BenchResult,
}

impl Pair {
    /// before / after median ratio.
    pub fn speedup(&self) -> f64 {
        self.before.median_ns / self.after.median_ns
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("before_ns", Json::Num(self.before.median_ns)),
            ("after_ns", Json::Num(self.after.median_ns)),
            ("speedup", Json::Num(self.speedup())),
        ])
    }
}

fn doppler_slab(p: &StapParams, rows: usize) -> CCube {
    CCube::from_fn([rows, p.j_channels, p.n_pulses], det_cx)
}

/// Times every before/after kernel pair. `quick` shrinks the bench
/// windows for CI smoke runs.
pub fn measure(quick: bool) -> Vec<Pair> {
    let mut b = if quick { Bench::quick() } else { Bench::new() };
    b.quiet = true;
    let p = StapParams::paper();
    let mut pairs = Vec::new();

    // --- raw FFT at the two pipeline lengths ---------------------------
    for n in [p.n_pulses, p.k_range] {
        let lanes = 32usize;
        let src: Vec<Cx> = (0..lanes * n).map(|i| det_cx(i, 1, 2)).collect();
        let plan2 = Fft::new_radix2(n);
        let before = b.run(&format!("fft_forward_{n}_x{lanes}_ref"), || {
            // Seed path: fresh buffer + per-lane dispatch.
            let mut total = 0.0;
            for lane in src.chunks_exact(n) {
                let mut buf = lane.to_vec();
                plan2.forward(&mut buf);
                total += buf[0].re;
            }
            total
        });
        let plan4 = Fft::new(n);
        let mut work = src.clone();
        let mut ws = FftScratch::new();
        let after = b.run(&format!("fft_forward_{n}_x{lanes}_opt"), || {
            // Hot path: one batched dispatch, in place, no allocation.
            work.copy_from_slice(&src);
            plan4.forward_lanes(&mut work, &mut ws);
            work[0].re
        });
        pairs.push(Pair {
            name: format!("fft_forward_n{n}_{lanes}lanes"),
            before,
            after,
        });
    }

    // --- Doppler slab at case-3 size (K/8 = 64 rows, J = 16, N = 128) --
    {
        let rows = 64usize;
        let slab = doppler_slab(&p, rows);
        let refd = ReferenceDoppler::new(&p);
        let shape = [rows, 2 * p.j_channels, p.n_pulses];
        let before = b.run("doppler_slab_ref", || {
            let mut out = CCube::zeros(shape);
            refd.process_rows(&slab, 0, &mut out);
            out[(0, 0, 0)].re
        });
        let proc = DopplerProcessor::new(&p);
        let mut out = CCube::zeros(shape);
        let mut ws = FftScratch::new();
        let after = b.run("doppler_slab_opt", || {
            proc.process_rows_with(&slab, 0, &mut out, &mut ws);
            out[(0, 0, 0)].re
        });
        pairs.push(Pair {
            name: "doppler_slab_64x16x128".into(),
            before,
            after,
        });
    }

    // --- pulse compression (8 bins, M = 6, K = 512) --------------------
    {
        let cube = CCube::from_fn([8, p.m_beams, p.k_range], det_cx);
        let refp = ReferencePulse::new(&p);
        let before = b.run("pulse_compression_ref", || refp.process(&cube)[(0, 0, 0)]);
        let pc = PulseCompressor::new(&p);
        let mut power = RCube::zeros(cube.shape());
        let mut ws = PulseScratch::new();
        let after = b.run("pulse_compression_opt", || {
            pc.process_into_with(&cube, &mut power, &mut ws);
            power[(0, 0, 0)]
        });
        pairs.push(Pair {
            name: "pulse_compression_8x6x512".into(),
            before,
            after,
        });
    }

    // --- redistribution packing (Doppler -> beamform reorganization) ---
    {
        // (K, 2J, N) on 8 nodes along K -> (N, K, 2J) on 4 nodes along N.
        let shape = [p.k_range, 2 * p.j_channels, p.n_pulses];
        let plan = RedistPlan::new(
            shape,
            AxisPartition::block(0, p.k_range, 8),
            AxisPartition::block(0, p.n_pulses, 4),
            [2, 0, 1],
        );
        let local = CCube::from_fn(plan.src_local_shape(0), det_cx);
        let blocks: Vec<_> = plan.sends_of(0).collect();
        let before = b.run("redist_pack_ref", || {
            // Seed path: per-element index arithmetic, fresh Vec per block.
            let mut acc = 0.0;
            for blk in &blocks {
                let msg = reference_pack(&plan, blk, &local);
                acc += msg[0].re;
            }
            acc
        });
        let pool: SharedBufferPool<Cx> = SharedBufferPool::new();
        let after = b.run("redist_pack_opt", || {
            let mut acc = 0.0;
            for blk in &blocks {
                let msg = plan.pack_with(blk, &local, &pool);
                acc += msg.as_slice()[0].re;
                pool.recycle(msg);
            }
            acc
        });
        pairs.push(Pair {
            name: "redist_pack_doppler_to_bf".into(),
            before,
            after,
        });
    }

    // --- easy beamforming, one bin: (J x M)^H . (J x K) ----------------
    {
        let w = CMat::from_fn(p.j_channels, p.m_beams, |i, j| det_cx(i, j, 3));
        let data = CCube::from_fn([1, p.k_range, p.j_channels], det_cx);
        let before = b.run("easy_bf_bin_ref", || {
            // Seed path: fresh slab + output, interleaved k-i-j product.
            let slab = CMat::from_fn(p.j_channels, p.k_range, |ch, kc| data[(0, kc, ch)]);
            let mut y = CMat::zeros(p.m_beams, p.k_range);
            hermitian_matmul_interleaved_into(&w, &slab, &mut y);
            y[(0, 0)].re
        });
        let mut slab = PlanarMat::zeros(p.j_channels, p.k_range);
        let mut wpack = PlanarMat::zeros(p.m_beams, p.j_channels);
        let mut y = CMat::zeros(p.m_beams, p.k_range);
        let after = b.run("easy_bf_bin_opt", || {
            // Hot path: split-complex packing + register-tiled micro-kernel.
            slab.fill_from_fn(p.j_channels, p.k_range, |ch, kc| data[(0, kc, ch)]);
            wpack.pack_hermitian_from(&w);
            gemm_planar_into(&wpack, &slab, &mut y);
            y[(0, 0)].re
        });
        pairs.push(Pair {
            name: "easy_beamform_bin_16x6x512".into(),
            before,
            after,
        });
    }

    // --- hard beamforming, one (bin, segment): (2J x M)^H . (2J x Kseg) -
    {
        let jj = 2 * p.j_channels;
        let seg = p.segment_range(p.num_segments() - 1); // largest segment
        let k_seg = seg.len();
        let w = CMat::from_fn(jj, p.m_beams, |i, j| det_cx(i, j, 7));
        let data = CCube::from_fn([1, k_seg, jj], det_cx);
        let before = b.run("hard_bf_seg_ref", || {
            let slab = CMat::from_fn(jj, k_seg, |ch, kc| data[(0, kc, ch)]);
            let mut y = CMat::zeros(p.m_beams, k_seg);
            hermitian_matmul_interleaved_into(&w, &slab, &mut y);
            y[(0, 0)].re
        });
        let mut slab = PlanarMat::zeros(jj, k_seg);
        let mut wpack = PlanarMat::zeros(p.m_beams, jj);
        let mut y = CMat::zeros(p.m_beams, k_seg);
        let after = b.run("hard_bf_seg_opt", || {
            slab.fill_from_fn(jj, k_seg, |ch, kc| data[(0, kc, ch)]);
            wpack.pack_hermitian_from(&w);
            gemm_planar_into(&wpack, &slab, &mut y);
            y[(0, 0)].re
        });
        pairs.push(Pair {
            name: format!("hard_beamform_seg_32x6x{k_seg}"),
            before,
            after,
        });
    }

    // --- SMI sample covariance: X^H X for a 48 x 16 training block -----
    {
        let rows = 3 * p.j_channels; // 48 training snapshots
        let x = CMat::from_fn(rows, p.j_channels, |i, j| det_cx(i, j, 11));
        let before = b.run("smi_cov_ref", || {
            let mut r = CMat::zeros(p.j_channels, p.j_channels);
            hermitian_matmul_interleaved_into(&x, &x, &mut r);
            r[(0, 0)].re
        });
        let mut r = CMat::zeros(p.j_channels, p.j_channels);
        let after = b.run("smi_cov_opt", || {
            // Dispatches to the planar engine (48*16*16 MACs > cutoff).
            x.hermitian_matmul_into(&x, &mut r);
            r[(0, 0)].re
        });
        pairs.push(Pair {
            name: "smi_covariance_48x16".into(),
            before,
            after,
        });
    }

    // --- recursive QR weight update: 2J x 2J R + one training block ----
    {
        let jj = 2 * p.j_channels;
        let s = p.hard_samples;
        let seed_block = CMat::from_fn(2 * jj, jj, |i, j| det_cx(i, j, 13));
        let r0 = qr_r(&seed_block);
        let new_rows = CMat::from_fn(s, jj, |i, j| det_cx(i, j, 17));
        let before = b.run("qr_weights_ref", || {
            let r = reference_qr_update(&r0, 0.95, &new_rows);
            r[(0, 0)].re
        });
        let mut out = CMat::zeros(jj, jj);
        let mut ws = QrScratch::new();
        let after = b.run("qr_weights_opt", || {
            qr_update_with(&r0, 0.95, &new_rows, &mut out, &mut ws);
            out[(0, 0)].re
        });
        pairs.push(Pair {
            name: format!("qr_weights_{jj}x{jj}_s{s}"),
            before,
            after,
        });
    }

    // --- rolling-window CFAR vs the frozen recomputing detector --------
    // Reduced config (K = 64, W = 16): the per-cell cost drops from
    // O(W) window recomputation to O(1) bound slides.
    {
        let rp = StapParams::reduced();
        let power = RCube::from_fn([rp.n_pulses, rp.m_beams, rp.k_range], |a, bb, c| {
            let v = det_cx(a, bb, c).norm_sqr();
            // A sprinkling of strong cells so the detection-push path
            // is exercised, not just the threshold math.
            if (a + bb + c) % 97 == 0 {
                v * 400.0
            } else {
                v
            }
        });
        let [nb, m, _] = power.shape();
        let mut dets: Vec<Detection> = Vec::with_capacity(1024);
        let before = b.run("cfar_ref", || {
            dets.clear();
            for bin in 0..nb {
                for beam in 0..m {
                    reference_cfar_lane(
                        &rp,
                        CfarKind::CellAveraging,
                        power.lane(bin, beam),
                        bin,
                        beam,
                        &mut dets,
                    );
                }
            }
            dets.len()
        });
        let mut scratch = CfarScratch::with_capacity(1024);
        let after = b.run("cfar_opt", || {
            scratch.begin_cpi();
            for bin in 0..nb {
                for beam in 0..m {
                    cfar::cfar_lane(
                        &rp,
                        power.lane(bin, beam),
                        bin,
                        beam,
                        &mut scratch.detections,
                    );
                }
            }
            scratch.detections.len()
        });
        pairs.push(Pair {
            name: format!("cfar_rolling_k{}_w{}", rp.k_range, rp.cfar_window),
            before,
            after,
        });
    }

    // --- SIMD dispatch pairs: forced-scalar vs runtime-dispatched ------
    // backend through the *same* code paths (outputs are bit-identical;
    // the delta is pure vectorization). On hosts without AVX2 — or with
    // STAP_SIMD=off — both sides resolve to scalar and the pair reads
    // ~1.0x, which is exactly what the recorded host metadata explains.
    {
        let lanes = 16usize;
        let k = p.k_range;
        let filt: Vec<Cx> = (0..k).map(|i| det_cx(i, 23, 29)).collect();
        let src: Vec<Cx> = (0..lanes * k).map(|i| det_cx(i, 31, 37)).collect();
        let mut spec = src.clone();
        simd::set_backend(Some(Backend::Scalar));
        let before = b.run("simd_cmul_ref", || {
            spec.copy_from_slice(&src);
            for lane in spec.chunks_exact_mut(k) {
                simd::cmul_in_place(lane, &filt);
            }
            spec[0].re
        });
        simd::set_backend(None);
        let after = b.run("simd_cmul_opt", || {
            spec.copy_from_slice(&src);
            for lane in spec.chunks_exact_mut(k) {
                simd::cmul_in_place(lane, &filt);
            }
            spec[0].re
        });
        pairs.push(Pair {
            name: format!("simd_cmul_{k}x{lanes}"),
            before,
            after,
        });

        let mut pow = vec![0.0f64; lanes * k];
        simd::set_backend(Some(Backend::Scalar));
        let before = b.run("simd_norm_sqr_ref", || {
            simd::norm_sqr_into(&mut pow, &src);
            pow[0]
        });
        simd::set_backend(None);
        let after = b.run("simd_norm_sqr_opt", || {
            simd::norm_sqr_into(&mut pow, &src);
            pow[0]
        });
        pairs.push(Pair {
            name: format!("simd_norm_sqr_{k}x{lanes}"),
            before,
            after,
        });
    }
    {
        // Doppler taper at the paper lane shape: window of N - stagger
        // weights applied with a per-range correction factor.
        let n = p.n_pulses;
        let wlen = n - p.stagger;
        let lanes = 64usize;
        let src: Vec<Cx> = (0..lanes * n).map(|i| det_cx(i, 41, 43)).collect();
        let win: Vec<f64> = (0..wlen).map(|i| det_cx(i, 47, 53).re + 1.0).collect();
        let mut out = vec![Cx::default(); n];
        simd::set_backend(Some(Backend::Scalar));
        let before = b.run("simd_taper_ref", || {
            let mut acc = 0.0;
            for lane in src.chunks_exact(n) {
                simd::taper_into(&mut out, lane, &win, 0.731);
                acc += out[0].re;
            }
            acc
        });
        simd::set_backend(None);
        let after = b.run("simd_taper_opt", || {
            let mut acc = 0.0;
            for lane in src.chunks_exact(n) {
                simd::taper_into(&mut out, lane, &win, 0.731);
                acc += out[0].re;
            }
            acc
        });
        pairs.push(Pair {
            name: format!("simd_taper_{wlen}x{lanes}"),
            before,
            after,
        });
    }
    {
        // Batched FFT butterflies at the pulse-compression length.
        let n = p.k_range;
        let lanes = 16usize;
        let fft = Fft::new(n);
        let src: Vec<Cx> = (0..lanes * n).map(|i| det_cx(i, 67, 71)).collect();
        let mut work = src.clone();
        let mut ws = FftScratch::new();
        simd::set_backend(Some(Backend::Scalar));
        let before = b.run("simd_fft_ref", || {
            work.copy_from_slice(&src);
            fft.forward_lanes(&mut work, &mut ws);
            work[0].re
        });
        simd::set_backend(None);
        let after = b.run("simd_fft_opt", || {
            work.copy_from_slice(&src);
            fft.forward_lanes(&mut work, &mut ws);
            work[0].re
        });
        pairs.push(Pair {
            name: format!("simd_fft_n{n}_{lanes}lanes"),
            before,
            after,
        });
    }

    pairs
}

/// Renders the `BENCH_kernels.json` document.
pub fn report(pairs: &[Pair], quick: bool) -> Json {
    let p = StapParams::paper();
    Json::obj([
        ("bench", Json::Str("kernels".into())),
        (
            "mode",
            Json::Str(if quick { "quick" } else { "full" }.into()),
        ),
        (
            "sizes",
            Json::obj([
                ("n_pulses", Json::Num(p.n_pulses as f64)),
                ("k_range", Json::Num(p.k_range as f64)),
                ("j_channels", Json::Num(p.j_channels as f64)),
                ("m_beams", Json::Num(p.m_beams as f64)),
            ]),
        ),
        ("host", host_metadata()),
        ("kernels", Json::arr(pairs.iter().map(|pr| pr.to_json()))),
    ])
}

/// The host CPU-feature context a benchmark document was recorded
/// under. Baselines move across machines; the regression gate compares
/// this against [`host_mismatch`] so a scalar-host rerun of an
/// AVX2-recorded baseline warns instead of misfiring.
pub fn host_metadata() -> Json {
    Json::obj([
        ("simd_backend", Json::Str(simd::backend_name().into())),
        ("avx2_available", Json::Bool(simd::avx2_available())),
        (
            "stap_simd_env",
            match std::env::var("STAP_SIMD") {
                Ok(v) => Json::Str(v),
                Err(_) => Json::Null,
            },
        ),
    ])
}

/// Checks whether `baseline` was recorded under a different SIMD
/// backend than the current process dispatches. Returns a
/// human-readable description of the mismatch, or `None` when the
/// backends agree (or the baseline predates host metadata — those
/// documents were all recorded on the gating host, so the gate still
/// applies).
pub fn host_mismatch(baseline: &str) -> Option<String> {
    let doc = Json::parse(baseline).ok()?;
    let recorded = match doc.get("host")?.get("simd_backend")? {
        Json::Str(s) => s.clone(),
        _ => return None,
    };
    let current = simd::backend_name();
    if recorded != current {
        Some(format!(
            "baseline recorded with simd_backend={recorded}, current host dispatches {current}"
        ))
    } else {
        None
    }
}

/// Compares fresh timings against a recorded `BENCH_kernels.json`
/// document. Returns one human-readable line per kernel whose new
/// optimized-path median is more than `tolerance` (fractional, e.g.
/// `0.10`) slower than the recorded `after_ns`. Kernels absent from the
/// baseline (new entries) are skipped. Errors when the baseline is not
/// parseable — a gate that silently skips is no gate.
pub fn regressions(pairs: &[Pair], baseline: &str, tolerance: f64) -> Result<Vec<String>, String> {
    let doc = Json::parse(baseline).map_err(|e| format!("baseline parse error: {e}"))?;
    let recorded = match doc.get("kernels") {
        Some(Json::Arr(a)) => a,
        _ => return Err("baseline has no `kernels` array".to_string()),
    };
    let mut lines = Vec::new();
    for p in pairs {
        let rec = recorded
            .iter()
            .find(|k| matches!(k.get("name"), Some(Json::Str(n)) if *n == p.name));
        let Some(old) = rec.and_then(|k| k.get("after_ns")).and_then(Json::as_f64) else {
            continue;
        };
        if old > 0.0 && p.after.median_ns > old * (1.0 + tolerance) {
            lines.push(format!(
                "{}: after_ns {:.0} -> {:.0} (+{:.1}%, tolerance {:.0}%)",
                p.name,
                old,
                p.after.median_ns,
                (p.after.median_ns / old - 1.0) * 100.0,
                tolerance * 100.0
            ));
        }
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference (seed-path) kernels and the optimized kernels must
    /// agree numerically — different FFT factorizations, same transform.
    #[test]
    fn reference_doppler_matches_optimized() {
        let p = StapParams::reduced();
        let rows = 8;
        let slab = doppler_slab(&p, rows);
        let shape = [rows, 2 * p.j_channels, p.n_pulses];
        let mut want = CCube::zeros(shape);
        ReferenceDoppler::new(&p).process_rows(&slab, 0, &mut want);
        let mut got = CCube::zeros(shape);
        DopplerProcessor::new(&p).process_rows(&slab, 0, &mut got);
        assert!(
            got.max_abs_diff(&want) < 1e-9,
            "{}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn reference_pulse_matches_optimized() {
        let p = StapParams::reduced();
        let cube = CCube::from_fn([2, p.m_beams, p.k_range], det_cx);
        let want = ReferencePulse::new(&p).process(&cube);
        let got = PulseCompressor::new(&p).process(&cube);
        let diff = want
            .as_slice()
            .iter()
            .zip(got.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(diff < 1e-9, "max power diff {diff}");
    }

    /// The frozen per-element pack must agree byte-for-byte with the
    /// run-fused / transpose-blocked live pack.
    #[test]
    fn reference_pack_matches_optimized() {
        let shape = [32, 8, 12];
        for perm in [[2, 0, 1], [0, 1, 2], [1, 2, 0]] {
            let plan = RedistPlan::new(
                shape,
                AxisPartition::block(0, shape[0], 4),
                AxisPartition::block(0, shape[perm[0]], 3),
                perm,
            );
            for src in 0..4 {
                let local = CCube::from_fn(plan.src_local_shape(src), det_cx);
                for blk in plan.sends_of(src) {
                    let want = reference_pack(&plan, blk, &local);
                    let got = plan.pack(blk, &local);
                    assert_eq!(got.as_slice(), &want[..], "perm {perm:?} src {src}");
                }
            }
        }
    }

    /// The frozen interleaved QR update must agree bit-for-bit with the
    /// planar scratch-based update (identical IEEE operation order).
    #[test]
    fn reference_qr_update_matches_optimized() {
        let seed_block = CMat::from_fn(20, 8, |i, j| det_cx(i, j, 23));
        let r0 = qr_r(&seed_block);
        let new_rows = CMat::from_fn(5, 8, |i, j| det_cx(i, j, 29));
        let want = reference_qr_update(&r0, 0.9, &new_rows);
        let mut got = CMat::zeros(8, 8);
        qr_update_with(&r0, 0.9, &new_rows, &mut got, &mut QrScratch::new());
        assert_eq!(got.as_slice(), want.as_slice());
    }

    /// The rolling-window detector must agree with the frozen
    /// recomputing reference for every `CfarKind`, including lanes
    /// shorter than the window (both edges fully clamped) and guard
    /// widths that collapse one half-window entirely.
    #[test]
    fn rolling_cfar_matches_frozen_reference() {
        // (lane length, window, guard): normal interior windows, a
        // window wider than the lane, guard swallowing the low half,
        // and a degenerate two-cell lane.
        let compare = |p: &StapParams, kind: CfarKind, lane: &[f64], what: &str| -> usize {
            let mut want = Vec::new();
            reference_cfar_lane(p, kind, lane, 3, 1, &mut want);
            let mut got = Vec::new();
            cfar::cfar_lane_kind(p, kind, lane, 3, 1, &mut got);
            assert_eq!(got.len(), want.len(), "{what}: {got:?} vs {want:?}");
            for (a, b) in got.iter().zip(&want) {
                assert_eq!((a.bin, a.beam, a.range), (b.bin, b.beam, b.range), "{what}");
                assert_eq!(a.power, b.power, "{what}");
                // Rolling sums accumulate the same cells in a
                // different association order: equal to rounding.
                assert!(
                    (a.threshold - b.threshold).abs() <= 1e-12 * b.threshold.abs().max(1.0),
                    "{what} range {}: threshold {} vs {}",
                    a.range,
                    a.threshold,
                    b.threshold
                );
            }
            got.len()
        };
        let kinds = [
            CfarKind::CellAveraging,
            CfarKind::GreatestOf,
            CfarKind::SmallestOf,
        ];
        for (k, w, g) in [
            (64usize, 16usize, 2usize),
            (64, 16, 0),
            (16, 32, 1),
            (8, 64, 0),
            (5, 4, 3),
            (2, 2, 0),
        ] {
            let mut p = StapParams::reduced();
            p.cfar_window = w;
            p.cfar_guard = g;
            // A near-zero scale makes every cell with a non-empty
            // reference window a detection, so the comparison pins the
            // threshold statistic at *every* range cell — interior,
            // clamped, and degenerate — not just at planted targets.
            p.cfar_scale = 1e-9;
            let lane: Vec<f64> = (0..k).map(|i| det_cx(i, w, g).norm_sqr() + 1e-3).collect();
            for kind in kinds {
                let n = compare(&p, kind, &lane, &format!("k={k} w={w} g={g} {kind:?}"));
                assert!(n > 0, "k={k} w={w} g={g}: no cells compared");
            }
        }
        // And one realistic pass: sparse 1000x spikes (spacing wider
        // than the reference span) at the paper's false-alarm scale, so
        // the actual detect/no-detect boundary is exercised too.
        {
            let p = StapParams::reduced(); // K = 64, W = 16, g = 2
            let lane: Vec<f64> = (0..p.k_range)
                .map(|i| {
                    let v = det_cx(i, 5, 9).norm_sqr() + 1e-3;
                    if i % 17 == 0 {
                        v * 1000.0
                    } else {
                        v
                    }
                })
                .collect();
            for kind in kinds {
                let n = compare(&p, kind, &lane, &format!("spikes {kind:?}"));
                assert!(n >= 3, "spiked lane should fire, got {n}");
            }
        }
    }

    #[test]
    fn host_mismatch_detects_backend_change() {
        let mine = report(&[], true).to_string_pretty();
        assert_eq!(host_mismatch(&mine), None);
        let other = if simd::backend_name() == "avx2" {
            "scalar"
        } else {
            "avx2"
        };
        let foreign = Json::obj([(
            "host",
            Json::obj([("simd_backend", Json::Str(other.into()))]),
        )])
        .to_string_pretty();
        assert!(host_mismatch(&foreign).is_some());
        // Pre-metadata baselines (no `host` key) are not a mismatch.
        assert_eq!(host_mismatch("{\"kernels\": []}"), None);
        assert_eq!(host_mismatch("not json"), None);
    }

    fn fake_pair(name: &str, after_ns: f64) -> Pair {
        let mk = |ns: f64| BenchResult {
            name: name.to_string(),
            median_ns: ns,
            min_ns: ns,
            mean_ns: ns,
            iters: 1,
        };
        Pair {
            name: name.to_string(),
            before: mk(after_ns * 2.0),
            after: mk(after_ns),
        }
    }

    #[test]
    fn regression_gate_flags_only_slowdowns_beyond_tolerance() {
        let baseline = Json::obj([(
            "kernels",
            Json::arr([
                Json::obj([
                    ("name", Json::Str("a".into())),
                    ("after_ns", Json::Num(100.0)),
                ]),
                Json::obj([
                    ("name", Json::Str("b".into())),
                    ("after_ns", Json::Num(100.0)),
                ]),
            ]),
        )])
        .to_string_pretty();
        // a: 25% slower (flagged). b: 5% slower (within tolerance).
        // c: not in baseline (skipped).
        let pairs = vec![
            fake_pair("a", 125.0),
            fake_pair("b", 105.0),
            fake_pair("c", 9999.0),
        ];
        let lines = regressions(&pairs, &baseline, 0.10).unwrap();
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(lines[0].starts_with("a:"), "{}", lines[0]);
        assert!(regressions(&pairs, "not json", 0.10).is_err());
    }

    #[test]
    fn report_has_all_pairs_and_positive_speedups() {
        // Tiny windows: this checks plumbing, not performance.
        let pairs = measure(true);
        let j = report(&pairs, true);
        let arr = match j.get("kernels") {
            Some(Json::Arr(a)) => a,
            other => panic!("kernels not an array: {other:?}"),
        };
        assert_eq!(arr.len(), pairs.len());
        assert!(pairs.len() >= 14);
        assert!(j.get("host").and_then(|h| h.get("simd_backend")).is_some());
        for pr in &pairs {
            assert!(pr.before.median_ns > 0.0 && pr.after.median_ns > 0.0);
            assert!(pr.speedup() > 0.0);
        }
    }
}
