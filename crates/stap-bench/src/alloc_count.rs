//! A counting allocator for zero-allocation regression tests.
//!
//! Wraps [`std::alloc::System`] and counts every allocation (including
//! `realloc` and `alloc_zeroed`) in process-wide atomics. Install it as
//! the `#[global_allocator]` in a test binary, warm up the code under
//! test so lazily-created state (thread-locals, pool freelists, FFT
//! scratch) exists, then snapshot the counters around the steady-state
//! region and assert the delta is zero.
//!
//! The counters are *global*, so zero-alloc assertions are only
//! meaningful in a single-threaded test binary (or one where competing
//! threads are quiescent). The in-tree `tests/zero_alloc.rs` uses one
//! `#[test]` function for exactly this reason.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// Counting wrapper around the system allocator.
///
/// ```ignore
/// #[global_allocator]
/// static A: stap_bench::alloc_count::CountingAllocator =
///     stap_bench::alloc_count::CountingAllocator;
/// ```
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc is an allocation event for our purposes: a grow that
        // moves is exactly the kind of steady-state churn we police.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Counter snapshot: `(allocation events, bytes requested)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    pub allocs: u64,
    pub bytes: u64,
}

/// Reads the current global counters.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOCS.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
    }
}

/// Allocation events between two snapshots (`later` - `earlier`).
pub fn delta(earlier: AllocSnapshot, later: AllocSnapshot) -> AllocSnapshot {
    AllocSnapshot {
        allocs: later.allocs - earlier.allocs,
        bytes: later.bytes - earlier.bytes,
    }
}

/// Runs `f` and returns `(result, allocation events during f)`.
pub fn count_in<T>(f: impl FnOnce() -> T) -> (T, AllocSnapshot) {
    let before = snapshot();
    let out = f();
    let after = snapshot();
    (out, delta(before, after))
}
