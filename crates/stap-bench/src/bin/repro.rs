//! Regenerates every table and figure of the paper's evaluation section,
//! printing paper-vs-model comparisons.
//!
//! Usage: `repro [table1|fig11|comm|table7|table8|whatif|ablations|all]`

use stap::sim::experiments as ex;
use stap_bench::{constraint_sweep, forgetting_sweep, window_ablation};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    if arg == "check" {
        let failures = ex::check();
        if failures.is_empty() {
            println!("reproduction gate: PASS (all paper-vs-model tolerances met)");
            return;
        }
        eprintln!("reproduction gate: FAIL");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    let run = |name: &str| arg == "all" || arg == name;
    if run("table1") {
        println!("{}", ex::table1());
    }
    if run("fig11") {
        println!("{}", ex::fig11());
    }
    if run("comm") {
        println!("{}", ex::tables2to6());
    }
    if run("table7") {
        println!("{}", ex::table7());
    }
    if run("table8") {
        println!("{}", ex::table8());
    }
    if run("whatif") {
        println!("{}", ex::tables9and10());
    }
    if run("ablations") {
        println!("{}", ex::ablations());
    }
    if run("replication") {
        println!("{}", ex::replication());
    }
    if run("optimizer") {
        println!("{}", ex::optimizer());
    }
    if run("windows") {
        println!("{}", window_ablation());
    }
    if run("baseline") {
        println!("{}", ex::rtmcarm_baseline());
    }
    if run("saturation") {
        println!("{}", ex::saturation());
    }
    if run("adaptive") {
        println!("{}", constraint_sweep());
        println!("{}", forgetting_sweep());
    }
    if run("gantt") {
        use stap::pipeline::NodeAssignment;
        use stap::sim::{render_gantt, simulate_traced, SimConfig};
        let mut cfg = SimConfig::paper(NodeAssignment::case3());
        cfg.num_cpis = 8;
        let traced = simulate_traced(&cfg);
        println!("{}", render_gantt(&traced, 8, 110));
    }
}
