//! `stapctl` — command-line front end for the parallel pipelined STAP
//! reproduction.
//!
//! ```text
//! stapctl simulate --nodes 16,8,56,8,14,8,8 [--cpis 25] [--input-rate 5]
//!                  [--replicas 1,1,1,1,1,1,1] [--contention] [--json]
//! stapctl optimize --budget 118 [--objective throughput|latency] [--floor 3.0]
//! stapctl detect   [--cpis 6] [--seed 42] [--full] [--nodes 2,1,2,1,1,2,1]
//! stapctl faults   [--cpis 10] [--seed 7] [--drop-cpi 2] [--stall-cpi 6]
//!                  [--expect degraded=3,dropped=1] [--json] [--out PATH]
//! stapctl gantt    [--nodes N0,..,N6] [--cpis 8]
//! stapctl csv      --what fig11|scaling
//! stapctl bench    [--quick] [--json] [--force] [--out BENCH_kernels.json]
//! stapctl bench    --streams [--quick] [--json] [--force] [--out BENCH_streams.json]
//! stapctl bench    --assign [--quick] [--json] [--force] [--out BENCH_assign.json]
//! stapctl assign   [--budget B] [--cpis K] [--evals E] [--expect sane,paper-case]
//!                  [--json] [--out PATH]
//! stapctl serve    [--streams 4] [--cpis 8] [--seed 42] [--depth 8] [--group G]
//!                  [--window 4] [--json] [--out PATH]
//! stapctl loadgen  [--streams 4] [--cpis 8] [--seed 42] [--depth 2] [--group G]
//!                  [--window 4] [--json] [--out PATH]
//! stapctl trace    [--cpis 6] [--seed 42] [--nodes 2,1,2,1,1,2,1] [--json]
//!                  [--transport inproc|shm|tcp] [--out TRACE_pipeline.json]
//! stapctl chaos    [--seed 7] [--cpis 10] [--checkpoint-every 3] [--deadline 120]
//!                  [--expect recovered>=1,quarantined=1] [--json] [--out PATH]
//! stapctl cluster  [--transport shm|tcp] [--cpis 6] [--seed 42] [--nodes ...]
//!                  [--relaunches 0] [--json] [--out PATH]
//! stapctl bench    --transport [--quick] [--json] [--force] [--out BENCH_transport.json]
//! ```
//!
//! `--transport` selects the rank fabric: `inproc` (the default) runs
//! every rank as a thread over channels; `shm` and `tcp` run each task
//! rank as a separate OS process over a shared-memory ring region or a
//! length-prefixed TCP mesh (with an in-process rendezvous listener),
//! the parent holding the driver rank. Detections are bit-identical
//! across all three — `trace --json` emits a `detections_digest` the CI
//! parity stage compares. `cluster` is the standalone multi-process
//! launcher (with relaunch supervision); `_rank` is the hidden re-exec
//! entry point child rank processes run.
//!
//! `serve` runs a resident multi-stream ingestion session (simulated
//! producer streams through admission control, cross-stream batching
//! and the resident pipeline) and reports per-stream p50/p99 latency;
//! `loadgen` is the same engine with a deliberately tight per-stream
//! queue so admission backpressure (QueueFull + retry) is exercised.
//! `bench --streams` measures the aggregate multi-stream rate against a
//! serial one-shot baseline and gates `BENCH_streams.json` like the
//! kernel bench.
//!
//! `faults` runs a deterministic fault-injection campaign on the real
//! (reduced-size) pipeline: one weight-task stall and one dropped
//! inter-task message, then reports per-CPI outcomes and health
//! counters. `--expect degraded=G,dropped=D` turns it into a CI gate
//! that fails when the classification deviates.
//!
//! `bench` in full mode refuses to overwrite its output file when any
//! kernel's optimized-path median regressed more than 10% against the
//! recorded `after_ns` (pass `--force` to accept a new baseline).
//!
//! `chaos` runs a seeded chaos campaign on the *supervised* serve
//! runtime: a scheduled rank panic (checkpoint/restore recovery), a
//! mid-flight stream disconnect + reconnect, a corrupt tenant that must
//! be quarantined, and one in-transit corruption. The campaign gates on
//! invariants — no deadlock, lost CPIs within the checkpoint bound,
//! quarantine fired, healthy streams complete — and exits non-zero when
//! any gate (or `--expect`) fails. `--expect` takes
//! `metric{=,>=,<=}value` terms over the emitted JSON's numeric fields
//! (booleans render as 0/1).
//!
//! `trace` runs the canonical two-azimuth reduced scenario with the
//! span recorder enabled, writes a Chrome trace-event JSON (loadable in
//! Perfetto or `chrome://tracing`), prints the per-task/per-edge text
//! breakdown, and reconciles the measured run against the `stap-sim`
//! model of the same configuration.

use stap::core::cfar::cluster;
use stap::core::StapParams;
use stap::machine::Mesh;
use stap::pipeline::assignment::TASK_NAMES;
use stap::pipeline::{NodeAssignment, ParallelStap};
use stap::radar::Scenario;
use stap::sim::assign::{optimize, Objective};
use stap::sim::{simulate, SimConfig};
use std::collections::HashMap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         stapctl simulate --nodes N0,..,N6 [--cpis K] [--input-rate R] [--replicas R0,..,R6] [--contention]\n  \
         stapctl optimize --budget B [--objective throughput|latency] [--floor T] [--moves M]\n  \
         stapctl detect [--cpis K] [--seed S] [--full] [--nodes N0,..,N6]\n  \
         stapctl faults [--cpis K] [--seed S] [--drop-cpi C] [--stall-cpi C] [--transport inproc|shm|tcp] [--expect degraded=G,dropped=D] [--json] [--out PATH]\n  \
         stapctl bench [--streams|--assign|--transport] [--quick] [--json] [--force] [--out PATH]\n  \
         stapctl assign [--budget B] [--cpis K] [--evals E] [--expect sane,paper-case] [--json] [--out PATH]\n  \
         stapctl serve [--streams N] [--cpis K] [--seed S] [--depth D] [--group G] [--window W] [--json] [--out PATH]\n  \
         stapctl loadgen [--streams N] [--cpis K] [--seed S] [--depth D] [--group G] [--window W] [--json] [--out PATH]\n  \
         stapctl trace [--cpis K] [--seed S] [--nodes N0,..,N6] [--transport inproc|shm|tcp] [--json] [--out PATH]\n  \
         stapctl cluster [--transport shm|tcp|inproc] [--cpis K] [--seed S] [--nodes N0,..,N6] [--relaunches R] [--json] [--out PATH]\n  \
         stapctl chaos [--seed S] [--cpis K] [--checkpoint-every C] [--deadline D] [--expect recovered>=1,quarantined=1] [--json] [--out PATH]"
    );
    ExitCode::from(2)
}

fn parse_flags(args: &[String], bools: &[&str]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            if bools.contains(&name) {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
            } else {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                flags.insert(name.to_string(), v.clone());
                i += 2;
            }
        } else {
            return Err(format!("unexpected argument {a}"));
        }
    }
    Ok(flags)
}

fn parse_counts(s: &str) -> Result<[usize; 7], String> {
    let parts: Vec<usize> = s
        .split(',')
        .map(|p| p.trim().parse::<usize>().map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    if parts.len() != 7 {
        return Err(format!(
            "need 7 comma-separated counts, got {}",
            parts.len()
        ));
    }
    Ok([
        parts[0], parts[1], parts[2], parts[3], parts[4], parts[5], parts[6],
    ])
}

fn parse_transport(
    flags: &HashMap<String, String>,
    default: stap::mp::TransportKind,
) -> Result<stap::mp::TransportKind, String> {
    flags
        .get("transport")
        .map(|s| s.parse().map_err(|e| format!("--transport: {e}")))
        .transpose()
        .map(|t| t.unwrap_or(default))
}

fn print_sim(r: &stap::sim::SimResult, assign: &NodeAssignment) {
    println!(
        "{:<16} {:>5} {:>8} {:>8} {:>8} {:>8}",
        "task", "nodes", "recv", "comp", "send", "total"
    );
    for (t, name) in TASK_NAMES.iter().enumerate() {
        let tt = r.tasks[t];
        println!(
            "{:<16} {:>5} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
            name,
            assign.0[t],
            tt.recv,
            tt.comp,
            tt.send,
            tt.total()
        );
    }
    println!(
        "throughput {:.4} CPI/s (eq {:.4})   latency {:.4} s (eq {:.4})",
        r.measured_throughput, r.eq_throughput, r.measured_latency, r.eq_latency
    );
}

fn cmd_simulate(flags: HashMap<String, String>) -> Result<(), String> {
    let nodes = flags
        .get("nodes")
        .map(|s| parse_counts(s))
        .transpose()?
        .unwrap_or(NodeAssignment::case2().0);
    let mut cfg = SimConfig::paper(NodeAssignment(nodes));
    if let Some(c) = flags.get("cpis") {
        cfg.num_cpis = c.parse().map_err(|e| format!("--cpis: {e}"))?;
    }
    if let Some(rate) = flags.get("input-rate") {
        let r: f64 = rate.parse().map_err(|e| format!("--input-rate: {e}"))?;
        cfg.input_interval_s = Some(1.0 / r);
    }
    if let Some(reps) = flags.get("replicas") {
        cfg.replicas = parse_counts(reps)?;
    }
    if flags.contains_key("contention") {
        cfg.mesh_contention = Some(Mesh::afrl());
    }
    if let Some(c) = flags.get("cpus") {
        cfg.cpus_per_node = c.parse().map_err(|e| format!("--cpus: {e}"))?;
    }
    let r = simulate(&cfg);
    if flags.contains_key("json") {
        println!("{}", r.to_json().to_string_pretty());
        return Ok(());
    }
    println!(
        "Paragon model: {} nodes ({} with replication), {} CPIs",
        cfg.assign.total(),
        cfg.assign
            .0
            .iter()
            .zip(&cfg.replicas)
            .map(|(n, r)| n * r)
            .sum::<usize>(),
        cfg.num_cpis
    );
    print_sim(&r, &cfg.assign);
    Ok(())
}

fn cmd_optimize(flags: HashMap<String, String>) -> Result<(), String> {
    let budget: usize = flags
        .get("budget")
        .ok_or("--budget is required")?
        .parse()
        .map_err(|e| format!("--budget: {e}"))?;
    let moves: usize = flags
        .get("moves")
        .map(|m| m.parse().map_err(|e| format!("--moves: {e}")))
        .transpose()?
        .unwrap_or(15);
    let objective = match flags.get("objective").map(String::as_str) {
        None | Some("throughput") => Objective::MaxThroughput,
        Some("latency") => Objective::MinLatency {
            throughput_floor: flags
                .get("floor")
                .map(|f| f.parse().map_err(|e| format!("--floor: {e}")))
                .transpose()?
                .unwrap_or(0.0),
        },
        Some(other) => return Err(format!("unknown objective {other}")),
    };
    let cfg = SimConfig::paper(NodeAssignment::case2());
    let (a, r) = optimize(&cfg, budget, objective, moves);
    println!("optimized assignment for {budget} nodes ({objective:?}):");
    print_sim(&r, &a);
    Ok(())
}

fn cmd_detect(flags: HashMap<String, String>) -> Result<(), String> {
    let cpis: usize = flags
        .get("cpis")
        .map(|c| c.parse().map_err(|e| format!("--cpis: {e}")))
        .transpose()?
        .unwrap_or(6);
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let full = flags.contains_key("full");
    let (params, scenario) = if full {
        (StapParams::paper(), Scenario::rtmcarm(seed))
    } else {
        (StapParams::reduced(), Scenario::reduced(seed))
    };
    let nodes = flags
        .get("nodes")
        .map(|s| parse_counts(s))
        .transpose()?
        .unwrap_or(NodeAssignment::tiny().0);
    let runner = ParallelStap::for_scenario(params, NodeAssignment(nodes), &scenario);
    println!(
        "processing {cpis} {} CPIs on {} rank threads...",
        if full {
            "full-size (512x16x128)"
        } else {
            "reduced (64x8x32)"
        },
        runner.assign.total()
    );
    let data: Vec<_> = scenario.stream(cpis).map(|(_, _, c)| c).collect();
    let out = runner.run(data);
    for (i, dets) in out.detections.iter().enumerate() {
        let reports = cluster(dets);
        println!("CPI {i}: {} reports", reports.len());
        for d in reports.iter().take(5) {
            println!(
                "    bin {:>3} beam {} range {:>3} power {:.1}",
                d.bin, d.beam, d.range, d.power
            );
        }
    }
    println!(
        "host throughput {:.2} CPI/s, latency {:.3} s",
        out.timings.measured_throughput, out.timings.measured_latency
    );
    Ok(())
}

fn cmd_faults(flags: HashMap<String, String>) -> Result<(), String> {
    use stap::pipeline::assignment::EASY_WT;
    use stap::pipeline::CpiOutcome;

    let cpis: usize = flags
        .get("cpis")
        .map(|c| c.parse().map_err(|e| format!("--cpis: {e}")))
        .transpose()?
        .unwrap_or(10);
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(7);
    let drop_cpi: usize = flags
        .get("drop-cpi")
        .map(|s| s.parse().map_err(|e| format!("--drop-cpi: {e}")))
        .transpose()?
        .unwrap_or(2);
    let stall_cpi: usize = flags
        .get("stall-cpi")
        .map(|s| s.parse().map_err(|e| format!("--stall-cpi: {e}")))
        .transpose()?
        .unwrap_or(6);
    if drop_cpi >= cpis || stall_cpi >= cpis {
        return Err(format!("--drop-cpi/--stall-cpi must be < --cpis ({cpis})"));
    }
    let transport = parse_transport(&flags, stap::mp::TransportKind::InProc)?;

    // The campaign of the acceptance spec: (a) one weight-task stall
    // long enough that every later weight misses its grace deadline
    // until the run drains, and (b) one dropped Doppler->beamform data
    // message. Everything is addressed by (rank, tagged edge, CPI), so
    // the outcome classification is exactly reproducible — on every
    // transport: `cluster::build_runner` reconstructs this exact plan
    // (same edge timeouts, same corruptor) in each rank process, so the
    // classification parity across inproc/shm/tcp is a testable gate.
    let assign = NodeAssignment::tiny();
    let easy_wt_rank = assign.rank_range(EASY_WT).start;
    println!(
        "fault campaign: {cpis} reduced CPIs over {}, drop Doppler->easyBF at CPI {drop_cpi}, \
         stall easy-weight rank {easy_wt_rank} for 2 s at CPI {stall_cpi}",
        transport.name()
    );
    let cfg = stap_bench::cluster::ClusterConfig {
        transport,
        nodes: assign.0,
        cpis,
        seed,
        two_beam: false,
        tracing: false,
        faults: Some(stap_bench::cluster::FaultSpec {
            drop_cpi,
            stall_cpi,
        }),
        exe: std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?,
        child_env: Vec::new(),
    };
    let out =
        stap_bench::cluster::run_cluster(&cfg).map_err(|e| format!("campaign failed: {e}"))?;

    let h = &out.timings.health;
    let (degraded, dropped) = (h.degraded_cpis, h.dropped_cpis);
    let want_json = flags.contains_key("json") || flags.contains_key("out");
    if want_json {
        use stap_util::Json;
        let outcome_str = |o: &CpiOutcome| match o {
            CpiOutcome::Ok => "ok",
            CpiOutcome::DegradedStaleWeights => "degraded",
            CpiOutcome::Dropped => "dropped",
        };
        let j = Json::obj([
            ("cpis", Json::Num(cpis as f64)),
            ("transport", Json::Str(transport.name().to_string())),
            ("degraded_cpis", Json::Num(degraded as f64)),
            ("dropped_cpis", Json::Num(dropped as f64)),
            (
                "outcomes",
                Json::arr(
                    out.timings
                        .outcomes
                        .iter()
                        .map(|o| Json::Str(outcome_str(o).to_string())),
                ),
            ),
        ]);
        if let Some(path) = flags.get("out") {
            std::fs::write(path, j.to_string_pretty()).map_err(|e| format!("write {path}: {e}"))?;
            println!("wrote {path}");
        }
        if flags.contains_key("json") {
            println!("{}", j.to_string_pretty());
        }
    } else {
        print!("{}", stap::pipeline::render_health(&out.timings));
        let marks: String = out
            .timings
            .outcomes
            .iter()
            .map(|o| match o {
                CpiOutcome::Ok => '.',
                CpiOutcome::DegradedStaleWeights => 'd',
                CpiOutcome::Dropped => 'X',
            })
            .collect();
        println!("per-CPI    [{marks}]  (.=ok d=degraded X=dropped)");
    }

    if let Some(exp) = flags.get("expect") {
        let mut want_deg: Option<u64> = None;
        let mut want_drop: Option<u64> = None;
        for part in exp.split(',') {
            match part.trim().split_once('=') {
                Some(("degraded", v)) => {
                    want_deg = Some(v.parse().map_err(|e| format!("--expect degraded: {e}"))?)
                }
                Some(("dropped", v)) => {
                    want_drop = Some(v.parse().map_err(|e| format!("--expect dropped: {e}"))?)
                }
                _ => return Err(format!("--expect: cannot parse {part:?}")),
            }
        }
        if let Some(w) = want_deg {
            if degraded != w {
                return Err(format!("expected {w} degraded CPIs, observed {degraded}"));
            }
        }
        if let Some(w) = want_drop {
            if dropped != w {
                return Err(format!("expected {w} dropped CPIs, observed {dropped}"));
            }
        }
        println!("expectations met: degraded={degraded} dropped={dropped}");
    }
    Ok(())
}

fn cmd_gantt(flags: HashMap<String, String>) -> Result<(), String> {
    let nodes = flags
        .get("nodes")
        .map(|s| parse_counts(s))
        .transpose()?
        .unwrap_or(NodeAssignment::case3().0);
    let mut cfg = SimConfig::paper(NodeAssignment(nodes));
    cfg.num_cpis = flags
        .get("cpis")
        .map(|c| c.parse().map_err(|e| format!("--cpis: {e}")))
        .transpose()?
        .unwrap_or(8);
    let traced = stap::sim::simulate_traced(&cfg);
    println!("{}", stap::sim::render_gantt(&traced, cfg.num_cpis, 110));
    Ok(())
}

fn cmd_csv(flags: HashMap<String, String>) -> Result<(), String> {
    use stap::sim::sweep;
    match flags.get("what").map(String::as_str) {
        Some("fig11") => {
            let m = stap::machine::Paragon::afrl_calibrated();
            let rows = sweep::fig11_rows(
                &m,
                &stap::core::flops::paper_table1().0,
                &sweep::default_fig11_sweeps(),
            );
            print!("{}", sweep::fig11_csv(&rows));
            Ok(())
        }
        Some("scaling") => {
            let cfg = SimConfig::paper(NodeAssignment::case3());
            let rows = sweep::scaling_rows(&cfg, &sweep::proportional_ladder(&[1, 2, 4, 8, 16]));
            print!("{}", sweep::scaling_csv(&rows));
            Ok(())
        }
        other => Err(format!("--what must be fig11 or scaling, got {other:?}")),
    }
}

fn cmd_bench(flags: HashMap<String, String>) -> Result<(), String> {
    use stap_bench::kernels;
    use stap_util::bench::fmt_ns;
    if flags.contains_key("streams") {
        return cmd_bench_streams(flags);
    }
    if flags.contains_key("assign") {
        return cmd_bench_assign(flags);
    }
    if flags.contains_key("transport") {
        return cmd_bench_transport(flags);
    }
    let quick = flags.contains_key("quick");
    let pairs = kernels::measure(quick);
    println!();
    println!(
        "{:<32} {:>12} {:>12} {:>9}",
        "kernel (before/after)", "seed path", "optimized", "speedup"
    );
    for p in &pairs {
        println!(
            "{:<32} {:>12} {:>12} {:>8.2}x",
            p.name,
            fmt_ns(p.before.median_ns),
            fmt_ns(p.after.median_ns),
            p.speedup()
        );
    }
    let out_path = flags
        .get("out")
        .map(String::as_str)
        .unwrap_or("BENCH_kernels.json");
    // Regression gate: full-mode runs must not silently regress a kernel
    // past the recorded baseline. Quick mode (CI smoke) times too little
    // to be meaningful; --force records a new baseline regardless. A
    // baseline recorded under a different SIMD backend (host metadata
    // mismatch) only warns — cross-host timings are not comparable and
    // must not hard-fail the gate.
    if !quick && !flags.contains_key("force") {
        if let Ok(baseline) = std::fs::read_to_string(out_path) {
            if let Some(why) = kernels::host_mismatch(&baseline) {
                eprintln!(
                    "WARNING: {why}; skipping the >10% regression gate \
                     (timings are not comparable across SIMD backends)"
                );
            } else {
                let slow = kernels::regressions(&pairs, &baseline, 0.10)?;
                if !slow.is_empty() {
                    for line in &slow {
                        eprintln!("REGRESSION {line}");
                    }
                    return Err(format!(
                        "{} kernel(s) regressed >10% vs the recorded {out_path}; \
                         baseline left untouched (re-run with --force to accept)",
                        slow.len()
                    ));
                }
            }
        }
    }
    let j = kernels::report(&pairs, quick);
    if flags.contains_key("json") {
        println!("{}", j.to_string_pretty());
    }
    std::fs::write(out_path, j.to_string_pretty()).map_err(|e| format!("write {out_path}: {e}"))?;
    println!("wrote {out_path}");
    Ok(())
}

fn cmd_bench_streams(flags: HashMap<String, String>) -> Result<(), String> {
    use stap_bench::streams;
    let quick = flags.contains_key("quick");
    let cfg = if quick {
        streams::StreamsConfig::quick()
    } else {
        streams::StreamsConfig::full()
    };
    println!(
        "multi-stream bench: {} streams x {} CPIs (group {}, window {}) vs {} serial one-shot CPIs...",
        cfg.streams, cfg.cpis_per_stream, cfg.max_group, cfg.window, cfg.serial_cpis
    );
    let r = streams::measure(cfg)?;
    let s = &r.load.summary;
    println!(
        "serial one-shot  {:>8.1} CPI/s\nmulti-stream     {:>8.1} CPI/s  ({} CPIs in {} slots, {:.2} CPIs/slot)\nspeedup          {:>8.2}x",
        r.serial_cpis_per_sec,
        s.cpis_per_sec,
        s.cpis,
        s.slots,
        s.cpis as f64 / s.slots.max(1) as f64,
        r.speedup
    );
    println!(
        "latency          p50 {:.2} ms  p99 {:.2} ms  max {:.2} ms   backpressure retries {}",
        s.aggregate.p50_ms, s.aggregate.p99_ms, s.aggregate.max_ms, r.load.backpressure_retries
    );
    for st in &s.streams {
        println!(
            "  stream {:>2}: {:>3} CPIs  p50 {:>7.2} ms  p99 {:>7.2} ms  max {:>7.2} ms",
            st.stream, st.cpis, st.latency.p50_ms, st.latency.p99_ms, st.latency.max_ms
        );
    }
    let out_path = flags
        .get("out")
        .map(String::as_str)
        .unwrap_or("BENCH_streams.json");
    // Same gating discipline as the kernel bench: a full-mode run that
    // lost more than 10% aggregate throughput (or gained >10% p99)
    // against the recorded baseline refuses to overwrite it.
    if !quick && !flags.contains_key("force") {
        if let Ok(baseline) = std::fs::read_to_string(out_path) {
            if let Some(why) = stap_bench::kernels::host_mismatch(&baseline) {
                eprintln!(
                    "WARNING: {why}; skipping the >10% regression gate \
                     (timings are not comparable across SIMD backends)"
                );
            } else {
                let slow = streams::regressions(&r, &baseline, 0.10)?;
                if !slow.is_empty() {
                    for line in &slow {
                        eprintln!("REGRESSION {line}");
                    }
                    return Err(format!(
                        "{} metric(s) regressed >10% vs the recorded {out_path}; \
                         baseline left untouched (re-run with --force to accept)",
                        slow.len()
                    ));
                }
            }
        }
    }
    let j = streams::report(&r, quick);
    if flags.contains_key("json") {
        println!("{}", j.to_string_pretty());
    }
    std::fs::write(out_path, j.to_string_pretty()).map_err(|e| format!("write {out_path}: {e}"))?;
    println!("wrote {out_path}");
    Ok(())
}

fn cmd_bench_assign(flags: HashMap<String, String>) -> Result<(), String> {
    use stap_bench::assign;
    let quick = flags.contains_key("quick");
    let cfg = if quick {
        assign::AssignConfig::quick()
    } else {
        assign::AssignConfig::full()
    };
    println!(
        "assignment bench: {} x {} CPIs per arm (window {}, group {}), optimizer budgets {}..={}",
        cfg.trials, cfg.cpis_per_trial, cfg.window, cfg.max_group, cfg.budget_lo, cfg.budget_hi
    );
    let r = assign::measure(cfg)?;
    let fmt_nodes = |a: &NodeAssignment| {
        a.0.iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    println!(
        "default   [{}]  median {:>8.1} CPI/s\noptimized [{}]  median {:>8.1} CPI/s  (modeled overhead {:.1} us/CPI)\nspeedup   {:>8.2}x",
        fmt_nodes(&r.default_assign),
        r.default_cpis_per_sec,
        fmt_nodes(&r.opt_assign),
        r.opt_cpis_per_sec,
        r.opt_modeled_overhead_s * 1e6,
        r.speedup
    );
    let out_path = flags
        .get("out")
        .map(String::as_str)
        .unwrap_or("BENCH_assign.json");
    // Same gating discipline as the other benches; a baseline recorded
    // under a different SIMD backend only warns (satellite: host
    // metadata travels in every BENCH_*.json).
    if !quick && !flags.contains_key("force") {
        if let Ok(baseline) = std::fs::read_to_string(out_path) {
            if let Some(why) = stap_bench::kernels::host_mismatch(&baseline) {
                eprintln!(
                    "WARNING: {why}; skipping the >10% regression gate \
                     (timings are not comparable across SIMD backends)"
                );
            } else {
                let slow = assign::regressions(&r, &baseline, 0.10)?;
                if !slow.is_empty() {
                    for line in &slow {
                        eprintln!("REGRESSION {line}");
                    }
                    return Err(format!(
                        "{} metric(s) regressed >10% vs the recorded {out_path}; \
                         baseline left untouched (re-run with --force to accept)",
                        slow.len()
                    ));
                }
            }
        }
    }
    let j = assign::report(&r, quick);
    if flags.contains_key("json") {
        println!("{}", j.to_string_pretty());
    }
    std::fs::write(out_path, j.to_string_pretty()).map_err(|e| format!("write {out_path}: {e}"))?;
    println!("wrote {out_path}");
    Ok(())
}

/// `stapctl bench --transport`: measure canonical-config pipeline
/// throughput over every transport (inproc threads, shm processes, tcp
/// processes), assert the detections digest agrees across all three,
/// and gate `BENCH_transport.json` with the same discipline as the
/// kernel bench: host-metadata mismatch warns and skips, a >10%
/// throughput regression against the recorded baseline refuses to
/// overwrite it unless `--force`.
fn cmd_bench_transport(flags: HashMap<String, String>) -> Result<(), String> {
    use stap::mp::TransportKind;
    use stap::pipeline::wire::detections_digest;
    use stap_bench::cluster::{run_cluster, ClusterConfig};
    use stap_bench::kernels;
    use stap_util::Json;

    let quick = flags.contains_key("quick");
    let cpis = if quick { 4 } else { 8 };
    println!("transport bench: canonical reduced config, {cpis} CPIs per transport...");
    let mut rows: Vec<(&'static str, f64, f64, f64)> = Vec::new();
    let mut digests: Vec<u64> = Vec::new();
    for t in TransportKind::ALL {
        let mut cfg = ClusterConfig::canonical(t);
        cfg.cpis = cpis;
        let t0 = std::time::Instant::now();
        let out = run_cluster(&cfg)?;
        let wall = t0.elapsed().as_secs_f64();
        let digest = detections_digest(&out.detections);
        // Gate on wall-clock CPI/s (stable, includes process spawn);
        // the steady-state rate rides along as information only — its
        // measurement window is too small at bench CPI counts to gate.
        let wall_thr = cpis as f64 / wall.max(1e-9);
        println!(
            "  {:<8} {wall_thr:>8.2} CPI/s wall (incl. spawn)  {:>10.2} CPI/s steady-state  digest {digest:016x}",
            t.name(),
            out.timings.measured_throughput,
        );
        rows.push((t.name(), wall_thr, out.timings.measured_throughput, wall));
        digests.push(digest);
    }
    if digests.windows(2).any(|w| w[0] != w[1]) {
        return Err("transports disagree on the detections digest — parity broken".into());
    }

    let out_path = flags
        .get("out")
        .map(String::as_str)
        .unwrap_or("BENCH_transport.json");
    // Same gating discipline as the kernel bench: full-mode runs must
    // not silently lose >10% throughput on any transport vs the
    // recorded baseline; cross-host baselines only warn.
    if !quick && !flags.contains_key("force") {
        if let Ok(baseline) = std::fs::read_to_string(out_path) {
            if let Some(why) = kernels::host_mismatch(&baseline) {
                eprintln!(
                    "WARNING: {why}; skipping the >10% regression gate \
                     (timings are not comparable across SIMD backends)"
                );
            } else {
                let slow = transport_regressions(&rows, &baseline, 0.10)?;
                if !slow.is_empty() {
                    for line in &slow {
                        eprintln!("REGRESSION {line}");
                    }
                    return Err(format!(
                        "{} transport(s) regressed >10% vs the recorded {out_path}; \
                         baseline left untouched (re-run with --force to accept)",
                        slow.len()
                    ));
                }
            }
        }
    }
    let j = Json::obj([
        ("quick", Json::Bool(quick)),
        ("cpis", Json::Num(cpis as f64)),
        (
            "detections_digest",
            Json::Str(format!("{:016x}", digests[0])),
        ),
        ("host", kernels::host_metadata()),
        (
            "transports",
            Json::arr(rows.iter().map(|(name, thr, steady, wall)| {
                Json::obj([
                    ("name", Json::Str((*name).to_string())),
                    ("cpis_per_sec", Json::Num(*thr)),
                    ("steady_cpi_s", Json::Num(*steady)),
                    ("wall_s", Json::Num(*wall)),
                ])
            })),
        ),
    ]);
    if flags.contains_key("json") {
        println!("{}", j.to_string_pretty());
    }
    std::fs::write(out_path, j.to_string_pretty()).map_err(|e| format!("write {out_path}: {e}"))?;
    println!("wrote {out_path}");
    Ok(())
}

/// Compares measured transport throughputs against a recorded
/// `BENCH_transport.json` baseline; returns one line per transport
/// whose wall-clock CPI/s fell more than `tol` below the baseline.
/// Quick-mode baselines time too little to gate against and pass.
fn transport_regressions(
    rows: &[(&'static str, f64, f64, f64)],
    baseline: &str,
    tol: f64,
) -> Result<Vec<String>, String> {
    use stap_util::Json;
    let doc = Json::parse(baseline).map_err(|e| format!("parse baseline: {e}"))?;
    if matches!(doc.get("quick"), Some(Json::Bool(true))) {
        return Ok(Vec::new());
    }
    let Some(Json::Arr(base)) = doc.get("transports") else {
        return Err("baseline has no transports array".into());
    };
    let mut slow = Vec::new();
    for (name, thr, _, _) in rows {
        for b in base {
            if !matches!(b.get("name"), Some(Json::Str(n)) if n.as_str() == *name) {
                continue;
            }
            if let Some(Json::Num(old)) = b.get("cpis_per_sec") {
                if *thr < old * (1.0 - tol) {
                    slow.push(format!(
                        "{name}: {old:.2} CPI/s recorded, {thr:.2} CPI/s measured"
                    ));
                }
            }
        }
    }
    Ok(slow)
}

/// `stapctl assign`: enumerate (or heuristically search) the
/// node-assignment lattice at a budget through the DES and print the
/// throughput/latency Pareto frontier. `--expect` turns it into a CI
/// gate: `sane` checks the frontier's internal invariants, `paper-case`
/// checks the paper's hand-picked assignment for that budget is on (or
/// dominated by) the frontier.
fn cmd_assign(flags: HashMap<String, String>) -> Result<(), String> {
    use stap::sim::{evaluate, explore, feasible, task_capacity, ExploreOptions};
    let budget: usize = flags
        .get("budget")
        .map(|s| s.parse().map_err(|e| format!("--budget: {e}")))
        .transpose()?
        .unwrap_or(59);
    if budget < 7 {
        return Err("--budget must be >= 7 (one node per task)".into());
    }
    let mut cfg = SimConfig::paper(NodeAssignment::case3());
    if let Some(c) = flags.get("cpis") {
        cfg.num_cpis = c.parse().map_err(|e| format!("--cpis: {e}"))?;
    }
    let mut opts = ExploreOptions::default();
    if let Some(e) = flags.get("evals") {
        opts.eval_budget = e.parse().map_err(|e| format!("--evals: {e}"))?;
    }
    // Seed the search with the paper's hand-picked cases (those whose
    // total differs from the budget are ignored) so each is guaranteed
    // evaluated and thus provably on or dominated by the frontier.
    let paper_cases = [
        NodeAssignment::case1(),
        NodeAssignment::case2(),
        NodeAssignment::case3(),
        NodeAssignment::table9(),
        NodeAssignment::table10(),
    ];
    opts.seeds = paper_cases.to_vec();
    let rep = explore(&cfg, budget, &opts);
    println!(
        "budget {budget}: lattice {} points ({}), {} evaluated, {} pruned, {} infeasible",
        rep.lattice,
        if rep.exhaustive {
            "exhaustive"
        } else {
            "heuristic search"
        },
        rep.evaluated,
        rep.pruned,
        rep.infeasible
    );
    let fmt_nodes = |a: &NodeAssignment| {
        a.0.iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    let mut front = rep.frontier.clone();
    front.sort_by(|a, b| b.throughput.total_cmp(&a.throughput));
    println!(
        "{:<28} {:>10} {:>10}",
        "frontier assignment", "CPI/s", "latency s"
    );
    for c in &front {
        let mark = if c.assign == rep.best_throughput.assign {
            "  <- best throughput"
        } else if c.assign == rep.best_latency.assign {
            "  <- best latency"
        } else {
            ""
        };
        println!(
            "{:<28} {:>10.4} {:>10.4}{mark}",
            fmt_nodes(&c.assign),
            c.throughput,
            c.latency
        );
    }
    if let Some(exp) = flags.get("expect") {
        for tok in exp.split(',') {
            match tok.trim() {
                "sane" => {
                    if rep.frontier.is_empty() {
                        return Err("expect sane: empty frontier".into());
                    }
                    for (name, best) in [
                        ("best_throughput", &rep.best_throughput),
                        ("best_latency", &rep.best_latency),
                    ] {
                        if !rep.frontier.iter().any(|c| c.assign == best.assign) {
                            return Err(format!("expect sane: {name} not on the frontier"));
                        }
                    }
                    for a in &rep.frontier {
                        for b in &rep.frontier {
                            if a.assign != b.assign
                                && a.dominates(b)
                                && (a.throughput > b.throughput || a.latency < b.latency)
                            {
                                return Err(format!(
                                    "expect sane: frontier member [{}] strictly dominates [{}]",
                                    fmt_nodes(&a.assign),
                                    fmt_nodes(&b.assign)
                                ));
                            }
                        }
                    }
                    if rep.exhaustive
                        && (rep.evaluated + rep.pruned + rep.infeasible) as u128 != rep.lattice
                    {
                        return Err(format!(
                            "expect sane: exhaustive sweep covered {} of {} lattice points",
                            rep.evaluated + rep.pruned + rep.infeasible,
                            rep.lattice
                        ));
                    }
                }
                "paper-case" => {
                    let cases: Vec<_> =
                        paper_cases.iter().filter(|a| a.total() == budget).collect();
                    if cases.is_empty() {
                        return Err(format!(
                            "expect paper-case: no paper assignment totals {budget} \
                             (use 236, 118, 59, 122 or 138)"
                        ));
                    }
                    for a in cases {
                        if !feasible(&cfg.params, a) {
                            // Paper case 1 runs hard weight on 112 nodes —
                            // twice the 56 hard-bin partition spaces, so no
                            // runtime-instantiable point can match it; its
                            // DES validation is `repro table7`.
                            let cap = task_capacity(&cfg.params);
                            println!(
                                "paper case [{}]: outside the partitionable lattice \
                                 (task capacities [{}]); skipping domination check",
                                fmt_nodes(a),
                                cap.iter()
                                    .map(|n| n.to_string())
                                    .collect::<Vec<_>>()
                                    .join(",")
                            );
                            continue;
                        }
                        let probe = evaluate(&cfg, *a);
                        let (on, dom) = rep.on_or_dominated(&probe);
                        if !on && dom.is_none() {
                            return Err(format!(
                                "expect paper-case: [{}] is neither on nor dominated by the frontier",
                                fmt_nodes(a)
                            ));
                        }
                        println!(
                            "paper case [{}]: {}",
                            fmt_nodes(a),
                            if on {
                                "on the frontier".to_string()
                            } else {
                                format!("dominated by [{}]", fmt_nodes(&dom.unwrap().assign))
                            }
                        );
                    }
                }
                other => return Err(format!("unknown --expect check '{other}'")),
            }
        }
        println!("expectations OK ({})", flags["expect"]);
    }
    let j = rep.to_json();
    if flags.contains_key("json") {
        println!("{}", j.to_string_pretty());
    }
    if let Some(out) = flags.get("out") {
        std::fs::write(out, j.to_string_pretty()).map_err(|e| format!("write {out}: {e}"))?;
        println!("wrote {out}");
    }
    Ok(())
}

/// Shared implementation of `stapctl serve` and `stapctl loadgen`: a
/// resident server session driven by the in-process load generator
/// (the repo is hermetic — streams are simulated producers, not
/// sockets). `serve` defaults to a steady session report; `loadgen`
/// defaults to a tighter queue to exercise admission backpressure.
fn cmd_serve_session(flags: HashMap<String, String>, loadgen_defaults: bool) -> Result<(), String> {
    use stap::pipeline::ResidentStap;
    use stap::serve::{run_loadgen, LoadgenConfig, ServerConfig, StapServer};

    let get = |k: &str, d: usize| -> Result<usize, String> {
        flags
            .get(k)
            .map(|v| v.parse().map_err(|e| format!("--{k}: {e}")))
            .transpose()
            .map(|o| o.unwrap_or(d))
    };
    let streams = get("streams", 4)?.max(1);
    let cpis = get("cpis", 8)?.max(1);
    let depth = get("depth", if loadgen_defaults { 2 } else { 8 })?.max(1);
    let group = get("group", streams.min(8))?.max(1);
    let window = get("window", 4)?.max(1);
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(42);

    // The progress banner goes to stderr so `--json` leaves stdout as
    // one parseable document.
    eprintln!(
        "resident serve session: {streams} streams x {cpis} CPIs \
         (group {group}, window {window}, queue depth {depth})..."
    );
    let report = run_loadgen(
        || {
            let params = StapParams::reduced();
            let scenario = Scenario::reduced(seed);
            let res = ResidentStap::for_scenario(params, NodeAssignment::tiny(), &scenario);
            StapServer::start(
                res,
                ServerConfig {
                    window,
                    max_group: group,
                    queue_depth: depth,
                    streams_hint: streams,
                    ..ServerConfig::default()
                },
            )
        },
        LoadgenConfig {
            streams,
            cpis_per_stream: cpis,
            seed,
            ..LoadgenConfig::default()
        },
    )
    .map_err(|e| format!("serve session failed: {e}"))?;
    let s = &report.summary;

    if flags.contains_key("json") {
        println!("{}", s.to_json().to_string_pretty());
    } else {
        println!(
            "{} CPIs in {} slots ({:.2} CPIs/slot), {:.1} CPI/s aggregate",
            s.cpis,
            s.slots,
            s.cpis as f64 / s.slots.max(1) as f64,
            s.cpis_per_sec
        );
        println!(
            "latency p50 {:.2} ms  p99 {:.2} ms  max {:.2} ms",
            s.aggregate.p50_ms, s.aggregate.p99_ms, s.aggregate.max_ms
        );
        for st in &s.streams {
            println!(
                "  stream {:>2}: {:>3} CPIs  {:>5} detections  p50 {:>7.2} ms  p99 {:>7.2} ms",
                st.stream, st.cpis, st.detections, st.latency.p50_ms, st.latency.p99_ms
            );
        }
        println!(
            "admission: {} rejected, {} purged, {} backpressure retries, {} abandoned",
            s.rejected, s.purged, report.backpressure_retries, report.abandoned_cpis
        );
        for (stream, rc) in &report.rejects {
            println!(
                "  stream {stream:>2} rejects: queue_full {} non_finite {} quarantined {} \
                 bad_shape {} unknown {} closed {}",
                rc.queue_full, rc.non_finite, rc.quarantined, rc.bad_shape, rc.unknown, rc.closed
            );
        }
        println!(
            "pools: cx {}/{} hits/misses, real {}/{}\nmailbox depth max {} (over high water {})",
            s.resident.pool_cx.hits,
            s.resident.pool_cx.misses,
            s.resident.pool_real.hits,
            s.resident.pool_real.misses,
            s.resident
                .health
                .max_mailbox_depth
                .iter()
                .copied()
                .max()
                .unwrap_or(0),
            s.resident.health.mailbox_over_high_water
        );
    }
    if let Some(out) = flags.get("out") {
        std::fs::write(out, s.to_json().to_string_pretty())
            .map_err(|e| format!("write {out}: {e}"))?;
        println!("wrote {out}");
    }
    Ok(())
}

/// `stapctl chaos`: one seeded chaos campaign against the supervised
/// serve runtime, gated on its invariants. Exits non-zero when a
/// campaign gate fails or an `--expect` term does not hold.
fn cmd_chaos(flags: HashMap<String, String>) -> Result<(), String> {
    use stap::serve::{run_chaos, ChaosConfig};

    let mut cfg = ChaosConfig::default();
    if let Some(s) = flags.get("seed") {
        cfg.seed = s.parse().map_err(|e| format!("--seed: {e}"))?;
    }
    if let Some(c) = flags.get("cpis") {
        cfg.cpis_per_stream = c.parse().map_err(|e| format!("--cpis: {e}"))?;
        if cfg.cpis_per_stream < 2 {
            return Err("--cpis must be >= 2 (the churn tenant splits its load)".into());
        }
    }
    if let Some(c) = flags.get("checkpoint-every") {
        cfg.checkpoint_every = c.parse().map_err(|e| format!("--checkpoint-every: {e}"))?;
    }
    if let Some(d) = flags.get("deadline") {
        cfg.deadline_s = d.parse().map_err(|e| format!("--deadline: {e}"))?;
    }
    eprintln!(
        "chaos campaign: seed {}, {} CPIs/stream, checkpoint every {} slots, {} s watchdog...",
        cfg.seed, cfg.cpis_per_stream, cfg.checkpoint_every, cfg.deadline_s
    );
    let report = run_chaos(cfg);
    let j = report.to_json();

    if flags.contains_key("json") {
        println!("{}", j.to_string_pretty());
    } else {
        println!(
            "recoveries {}  checkpoints {}  lost {}/{} CPIs  quarantines {}  \
             degraded {}  completed {}",
            report.recovered,
            report.checkpoints,
            report.lost_cpis,
            report.lost_bound,
            report.quarantine_events,
            report.degraded_cpis,
            report.cpis
        );
        println!(
            "healthy p99 {:.2} ms (budget {:.0} ms)  reconnect {}  deadlock {}",
            report.healthy_p99_ms,
            report.p99_budget_ms,
            if report.reconnect_ok { "ok" } else { "FAILED" },
            if report.deadlock { "YES" } else { "no" }
        );
        for f in &report.failures {
            eprintln!("GATE FAILED: {f}");
        }
    }
    if let Some(out) = flags.get("out") {
        std::fs::write(out, j.to_string_pretty()).map_err(|e| format!("write {out}: {e}"))?;
        println!("wrote {out}");
    }

    // `--expect metric{=,>=,<=}value` over the report's numeric fields.
    if let Some(exp) = flags.get("expect") {
        let metric = |k: &str| -> Result<f64, String> {
            match j.get(k) {
                Some(stap_util::Json::Num(v)) => Ok(*v),
                _ => Err(format!("--expect: unknown metric {k:?}")),
            }
        };
        for term in exp.split(',') {
            let term = term.trim();
            let (key, op, want) = if let Some((k, v)) = term.split_once(">=") {
                (k, ">=", v)
            } else if let Some((k, v)) = term.split_once("<=") {
                (k, "<=", v)
            } else if let Some((k, v)) = term.split_once('=') {
                (k, "=", v)
            } else {
                return Err(format!("--expect: cannot parse {term:?}"));
            };
            let want: f64 = want.parse().map_err(|e| format!("--expect {term}: {e}"))?;
            let got = metric(key)?;
            let ok = match op {
                ">=" => got >= want,
                "<=" => got <= want,
                _ => got == want,
            };
            if !ok {
                return Err(format!("expected {key} {op} {want}, observed {got}"));
            }
        }
        println!("expectations met ({exp})");
    }

    if !report.passed {
        return Err(format!(
            "chaos campaign failed {} gate(s)",
            report.failures.len()
        ));
    }
    println!("chaos campaign passed all gates");
    Ok(())
}

fn cmd_trace(flags: HashMap<String, String>) -> Result<(), String> {
    use stap::pipeline::trace::{chrome_trace_json, render_breakdown, TraceStats};
    use stap::sim::{reconcile, render_reconciliation};
    use stap_util::Json;

    let cpis: usize = flags
        .get("cpis")
        .map(|c| c.parse().map_err(|e| format!("--cpis: {e}")))
        .transpose()?
        .unwrap_or(6);
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let nodes = flags
        .get("nodes")
        .map(|s| parse_counts(s))
        .transpose()?
        .unwrap_or(NodeAssignment::tiny().0);
    if cpis == 0 {
        return Err("--cpis must be >= 1".to_string());
    }

    // The canonical tracing configuration: the reduced scenario with a
    // two-azimuth revisit cycle, so the temporal weight dependency
    // (weights applied `beams` CPIs later) is exercised without the
    // paper's full five-beam cycle. All three transports run through
    // `cluster::run_cluster` (inproc short-circuits to the thread
    // runner), so the detections digest below is directly comparable
    // across `--transport` values — the CI parity gate's whole basis.
    let transport = parse_transport(&flags, stap::mp::TransportKind::InProc)?;
    let params = StapParams::reduced();
    let mut scenario = Scenario::reduced(seed);
    scenario.transmit_beams = vec![-20.0, 20.0];

    let cluster_cfg = stap_bench::cluster::ClusterConfig {
        transport,
        nodes,
        cpis,
        seed,
        two_beam: true,
        tracing: true,
        faults: None,
        exe: std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?,
        child_env: Vec::new(),
    };
    println!(
        "tracing {cpis} reduced CPIs (2-azimuth revisit) on {} rank {} over {}...",
        NodeAssignment(nodes).total(),
        if transport == stap::mp::TransportKind::InProc {
            "threads"
        } else {
            "processes"
        },
        transport.name()
    );
    let out = stap_bench::cluster::run_cluster(&cluster_cfg)
        .map_err(|e| format!("traced run failed: {e}"))?;
    let digest = stap::pipeline::wire::detections_digest(&out.detections);
    let trace = out.trace.as_ref().expect("tracing was enabled");

    // Artifact 1: Chrome trace-event JSON (Perfetto / chrome://tracing).
    let chrome = chrome_trace_json(trace);
    let events = match chrome.get("traceEvents") {
        Some(Json::Arr(v)) => v.len(),
        _ => 0,
    };
    let out_path = flags
        .get("out")
        .map(String::as_str)
        .unwrap_or("TRACE_pipeline.json");
    std::fs::write(out_path, chrome.to_string_pretty())
        .map_err(|e| format!("write {out_path}: {e}"))?;

    // Artifact 2: measured-vs-modeled reconciliation of the same
    // configuration (reduced geometry, measured flops, 2-beam cycle).
    let stats = TraceStats::from_trace(trace);
    let mut cfg = SimConfig::paper(NodeAssignment(nodes));
    cfg.params = params;
    cfg.flops = stap::core::flops::measure(&cfg.params, seed);
    cfg.beams = scenario.transmit_beams.len();
    cfg.num_cpis = cpis;
    cfg.warmup = if cpis > 6 { 3 } else { 1 };
    cfg.cooldown = if cpis > 6 { 2 } else { 1 };
    let rec = reconcile(&out.timings, &stats.bytes_per_cpi(), &cfg);

    if flags.contains_key("json") {
        let j = Json::obj([
            ("trace_file", Json::Str(out_path.to_string())),
            ("trace_events", Json::Num(events as f64)),
            ("cpis", Json::Num(cpis as f64)),
            ("transport", Json::Str(transport.name().to_string())),
            ("detections_digest", Json::Str(format!("{digest:016x}"))),
            (
                "throughput_cpi_s",
                Json::Num(out.timings.measured_throughput),
            ),
            ("latency_s", Json::Num(out.timings.measured_latency)),
            ("reconciliation", rec.to_json()),
        ]);
        println!("{}", j.to_string_pretty());
    } else {
        println!();
        print!("{}", render_breakdown(trace, &out.timings));
        println!();
        print!("{}", render_reconciliation(&rec));
        println!();
        println!("detections digest {digest:016x} (bit-exact across transports)");
    }
    println!("wrote {out_path} ({events} events; load in Perfetto or chrome://tracing)");
    Ok(())
}

/// `stapctl cluster`: run the canonical reduced pipeline as a real
/// multi-process cluster — the parent holds the driver rank plus the
/// transport bootstrap (shared ring region for `shm`, rendezvous
/// listener for `tcp`), and each task rank is a re-execed `stapctl
/// _rank` child process — under relaunch supervision, then report
/// throughput and the detections digest the CI parity gate compares.
fn cmd_cluster(flags: HashMap<String, String>) -> Result<(), String> {
    use stap::pipeline::wire::detections_digest;
    use stap_bench::cluster::{run_supervised, ClusterConfig};
    use stap_util::Json;

    let transport = parse_transport(&flags, stap::mp::TransportKind::Shm)?;
    let mut cfg = ClusterConfig::canonical(transport);
    if let Some(c) = flags.get("cpis") {
        cfg.cpis = c.parse().map_err(|e| format!("--cpis: {e}"))?;
    }
    if let Some(s) = flags.get("seed") {
        cfg.seed = s.parse().map_err(|e| format!("--seed: {e}"))?;
    }
    if let Some(n) = flags.get("nodes") {
        cfg.nodes = parse_counts(n)?;
    }
    if cfg.cpis == 0 {
        return Err("--cpis must be >= 1".to_string());
    }
    let max_relaunches: usize = flags
        .get("relaunches")
        .map(|r| r.parse().map_err(|e| format!("--relaunches: {e}")))
        .transpose()?
        .unwrap_or(0);
    let ranks = NodeAssignment(cfg.nodes).total();
    println!(
        "cluster: {} reduced CPIs on {ranks} task ranks + driver over {}...",
        cfg.cpis,
        transport.name()
    );
    let t0 = std::time::Instant::now();
    let (out, relaunches) = run_supervised(&cfg, max_relaunches)?;
    let wall = t0.elapsed().as_secs_f64();
    let digest = detections_digest(&out.detections);

    let want_json = flags.contains_key("json") || flags.contains_key("out");
    if want_json {
        let j = Json::obj([
            ("transport", Json::Str(transport.name().to_string())),
            ("cpis", Json::Num(cfg.cpis as f64)),
            ("ranks", Json::Num(ranks as f64)),
            ("relaunches", Json::Num(relaunches as f64)),
            ("wall_s", Json::Num(wall)),
            (
                "throughput_cpi_s",
                Json::Num(out.timings.measured_throughput),
            ),
            ("latency_s", Json::Num(out.timings.measured_latency)),
            ("detections_digest", Json::Str(format!("{digest:016x}"))),
        ]);
        if let Some(path) = flags.get("out") {
            std::fs::write(path, j.to_string_pretty()).map_err(|e| format!("write {path}: {e}"))?;
            println!("wrote {path}");
        }
        if flags.contains_key("json") {
            println!("{}", j.to_string_pretty());
        }
    } else {
        println!(
            "throughput {:.2} CPI/s, latency {:.3} s ({wall:.2} s wall incl. process spawn)",
            out.timings.measured_throughput, out.timings.measured_latency
        );
        println!("detections digest {digest:016x}   relaunches {relaunches}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    // `bench --streams`/`--transport` are selectors (boolean);
    // `serve`/`loadgen` take `--streams N` and `trace`/`faults`/
    // `cluster` take `--transport KIND` as values.
    let bools: &[&str] = match cmd.as_str() {
        "bench" => &["quick", "json", "force", "streams", "assign", "transport"],
        "serve" | "loadgen" | "assign" | "chaos" | "cluster" => &["json"],
        "_rank" => &["two-beam", "trace"],
        _ => &["contention", "full", "json", "quick", "force"],
    };
    let flags = match parse_flags(&args[1..], bools) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let result = match cmd.as_str() {
        "simulate" => cmd_simulate(flags),
        "optimize" => cmd_optimize(flags),
        "detect" => cmd_detect(flags),
        "faults" => cmd_faults(flags),
        "gantt" => cmd_gantt(flags),
        "csv" => cmd_csv(flags),
        "bench" => cmd_bench(flags),
        "assign" => cmd_assign(flags),
        "serve" => cmd_serve_session(flags, false),
        "loadgen" => cmd_serve_session(flags, true),
        "trace" => cmd_trace(flags),
        "chaos" => cmd_chaos(flags),
        "cluster" => cmd_cluster(flags),
        // Hidden: the child-rank re-exec entry `cluster` spawns.
        "_rank" => stap_bench::cluster::child_main(&flags),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
