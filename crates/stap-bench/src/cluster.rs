//! Multi-process cluster launcher for the pipelined STAP runtime.
//!
//! The in-process pipeline (`ParallelStap::try_run`) runs every rank as
//! a thread over the channel fabric. This module runs the *same* ranks
//! as separate OS processes over a wire transport (shared memory or
//! TCP): the parent process owns the driver rank on a thread, spawns
//! one child process per task rank (a hidden `stapctl _rank` re-exec),
//! and supervises them — a child that dies poisons the driver's comm so
//! the run fails fast instead of hanging, mirroring the serve-layer
//! supervisor's fail-detect-relaunch discipline (see
//! `stap_serve::supervisor`; [`run_supervised`] is the cluster analogue
//! of its `max_recoveries` loop).
//!
//! The entire pipeline code path is shared with the in-process runner:
//! children call [`stap::pipeline::ParallelStap::run_rank`] — the exact
//! per-rank body `try_run` uses — over a wire-backed `Comm` with the
//! bit-exact [`stap::pipeline::wire::msg_codec`]. That is what makes
//! transport parity a *testable* property instead of a hope: same
//! kernels, same matching, same fault rules, only the byte transport
//! differs.
//!
//! Everything a child needs to reconstruct its identical
//! [`ClusterConfig`] travels on argv; child results (task reports and
//! span traces) come back as one sentinel-prefixed JSON line on stdout,
//! and detections flow to the parent's driver rank over the wire like
//! any other edge.

use stap::cube::CCube;
use stap::mp::{
    spawn_coordinator, Comm, ShmLink, ShmRegion, TcpLink, TraceSink, TransportKind, WireLink,
};
use stap::pipeline::assignment::Partitions;
use stap::pipeline::fault::nan_corruptor;
use stap::pipeline::msg::Msg;
use stap::pipeline::tasks::PipelinePools;
use stap::pipeline::wire::{
    msg_codec, rank_result_from_json, rank_result_to_json, rank_trace_from_json, rank_trace_to_json,
};
use stap::pipeline::{NodeAssignment, ParallelStap, PipelineOutput, RuntimePolicy};
use stap::radar::Scenario;
use stap_util::Json;
use std::collections::HashMap;
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Sentinel prefixing the one JSON result line each child rank prints;
/// everything else on the child's stdout is ignored.
pub const RESULT_SENTINEL: &str = "@stapctl-rank-result ";

/// Deterministic fault campaign riding on a cluster run: the canonical
/// `stapctl faults` plan (one dropped Doppler->easyBF message, one
/// 2-second easy-weight stall), reconstructed identically in every
/// rank process from these two indices.
#[derive(Clone, Copy, Debug)]
pub struct FaultSpec {
    /// CPI whose Doppler->easyBF message is dropped.
    pub drop_cpi: usize,
    /// CPI at which the easy-weight rank stalls for 2 s.
    pub stall_cpi: usize,
}

/// Everything needed to rebuild the identical pipeline in the parent
/// and in every child rank process. All fields are exactly
/// reconstructable from argv strings, so parent and children agree
/// bit-for-bit on scenario data, steering and fault plans.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Wire transport (`InProc` short-circuits to the thread runner).
    pub transport: TransportKind,
    /// Node counts per task.
    pub nodes: [usize; 7],
    /// CPIs to stream.
    pub cpis: usize,
    /// Scenario seed.
    pub seed: u64,
    /// Use the canonical two-azimuth trace scenario
    /// (`transmit_beams = [-20, 20]`) instead of the scenario default.
    pub two_beam: bool,
    /// Record span traces (children ship theirs back as JSON).
    pub tracing: bool,
    /// Optional fault campaign (implies the fault-tolerant policy).
    pub faults: Option<FaultSpec>,
    /// The `stapctl` binary to re-exec for child ranks. Defaults to
    /// the current executable.
    pub exe: PathBuf,
    /// Extra environment for child rank processes only (test hooks like
    /// `STAP_TEST_ABORT_ONCE` ride here instead of mutating the parent
    /// process environment, which would race parallel tests).
    pub child_env: Vec<(String, String)>,
}

impl ClusterConfig {
    /// The canonical reduced config on `transport` (tiny assignment,
    /// two-azimuth revisit — the same configuration `stapctl trace`
    /// runs and the parity gate compares across transports).
    pub fn canonical(transport: TransportKind) -> ClusterConfig {
        ClusterConfig {
            transport,
            nodes: NodeAssignment::tiny().0,
            cpis: 6,
            seed: 42,
            two_beam: true,
            tracing: false,
            faults: None,
            exe: std::env::current_exe().unwrap_or_else(|_| PathBuf::from("stapctl")),
            child_env: Vec::new(),
        }
    }
}

/// Builds the runner and input stream for `cfg` — the single source of
/// truth both the parent and every child rank process execute, so any
/// two processes with the same argv hold bit-identical configurations.
pub fn build_runner(cfg: &ClusterConfig) -> (ParallelStap, Vec<CCube>) {
    use stap::core::StapParams;
    use stap::mp::FaultPlan;
    use stap::pipeline::assignment::{DOPPLER, EASY_BF, EASY_WT};
    use stap::pipeline::msg::{tag, Edge};

    let params = StapParams::reduced();
    let mut scenario = Scenario::reduced(cfg.seed);
    if cfg.two_beam {
        scenario.transmit_beams = vec![-20.0, 20.0];
    }
    let assign = NodeAssignment(cfg.nodes);
    let mut runner = ParallelStap::for_scenario(params, assign, &scenario);
    if cfg.tracing {
        runner = runner.with_tracing();
    }
    if let Some(f) = cfg.faults {
        let easy_wt_rank = assign.rank_range(EASY_WT).start;
        let doppler0 = assign.rank_range(DOPPLER).start;
        let easy_bf_rank = assign.rank_range(EASY_BF).start;
        let plan = FaultPlan::seeded(cfg.seed)
            .stall_rank(easy_wt_rank, f.stall_cpi as u64, Duration::from_secs(2))
            .drop_message(
                doppler0,
                easy_bf_rank,
                tag(Edge::DopplerToEasyBf, f.drop_cpi),
            );
        runner = runner
            .with_policy(RuntimePolicy {
                fault_tolerant: true,
                edge_timeout: Duration::from_millis(200),
                weight_grace: Duration::from_millis(50),
                max_retries: 1,
                screen_nonfinite: true,
                ..RuntimePolicy::default()
            })
            .with_faults(plan);
    }
    let data: Vec<CCube> = scenario.stream(cfg.cpis).map(|(_, _, c)| c).collect();
    (runner, data)
}

fn child_args(cfg: &ClusterConfig, rank: usize, endpoint: &str) -> Vec<String> {
    let mut a = vec![
        "_rank".to_string(),
        "--transport".into(),
        cfg.transport.name().to_string(),
        "--rank".into(),
        rank.to_string(),
        "--endpoint".into(),
        endpoint.to_string(),
        "--nodes".into(),
        cfg.nodes.map(|n| n.to_string()).join(","),
        "--cpis".into(),
        cfg.cpis.to_string(),
        "--seed".into(),
        cfg.seed.to_string(),
    ];
    if cfg.two_beam {
        a.push("--two-beam".into());
    }
    if cfg.tracing {
        a.push("--trace".into());
    }
    if let Some(f) = cfg.faults {
        a.push("--fault-drop".into());
        a.push(f.drop_cpi.to_string());
        a.push("--fault-stall".into());
        a.push(f.stall_cpi.to_string());
    }
    a
}

/// Entry point for the hidden `stapctl _rank` subcommand: parses the
/// flags [`child_args`] built, runs exactly one rank over the wire, and
/// prints the sentinel-prefixed JSON result line.
pub fn child_main(flags: &HashMap<String, String>) -> Result<(), String> {
    let get = |k: &str| -> Result<&String, String> { flags.get(k).ok_or(format!("--{k} missing")) };
    let transport: TransportKind = get("transport")?.parse()?;
    let rank: usize = get("rank")?.parse().map_err(|e| format!("--rank: {e}"))?;
    let endpoint = get("endpoint")?.clone();
    let nodes: Vec<usize> = get("nodes")?
        .split(',')
        .map(|p| p.parse().map_err(|e| format!("--nodes: {e}")))
        .collect::<Result<_, String>>()?;
    let nodes: [usize; 7] = nodes
        .try_into()
        .map_err(|_| "--nodes needs 7 counts".to_string())?;
    let cfg = ClusterConfig {
        transport,
        nodes,
        cpis: get("cpis")?.parse().map_err(|e| format!("--cpis: {e}"))?,
        seed: get("seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
        two_beam: flags.contains_key("two-beam"),
        tracing: flags.contains_key("trace"),
        faults: match (flags.get("fault-drop"), flags.get("fault-stall")) {
            (Some(d), Some(s)) => Some(FaultSpec {
                drop_cpi: d.parse().map_err(|e| format!("--fault-drop: {e}"))?,
                stall_cpi: s.parse().map_err(|e| format!("--fault-stall: {e}"))?,
            }),
            (None, None) => None,
            _ => return Err("--fault-drop and --fault-stall come together".into()),
        },
        exe: PathBuf::new(),
        child_env: Vec::new(),
    };

    // Test hook: `STAP_TEST_ABORT_ONCE=<rank>:<marker-path>` makes that
    // rank die on its first launch (writing the marker as the been-here
    // flag), so the supervised relaunch path is testable end to end.
    // The variable arrives via `ClusterConfig::child_env`, never the
    // parent's environment.
    if let Ok(spec) = std::env::var("STAP_TEST_ABORT_ONCE") {
        if let Some((r, marker)) = spec.split_once(':') {
            if r.parse() == Ok(rank) && !std::path::Path::new(marker).exists() {
                let _ = std::fs::write(marker, b"aborted");
                std::process::exit(101);
            }
        }
    }

    let (runner, cpis) = build_runner(&cfg);
    let size = runner.assign.world_size();
    let link: Box<dyn WireLink> = match cfg.transport {
        TransportKind::Shm => Box::new(
            ShmLink::attach(std::path::Path::new(&endpoint), rank)
                .map_err(|e| format!("shm attach {endpoint}: {e}"))?,
        ),
        TransportKind::Tcp => Box::new(
            TcpLink::rendezvous(&endpoint, rank, size)
                .map_err(|e| format!("tcp rendezvous {endpoint}: {e}"))?,
        ),
        TransportKind::InProc => return Err("_rank needs a wire transport".into()),
    };
    let mut comm: Comm<Msg> = Comm::over_wire(link, msg_codec());
    if let Some(plan) = runner.faults.clone() {
        comm.install_fault_plan(plan, Some(nan_corruptor()));
    }
    let sink = TraceSink::new();
    let epoch = runner.tracing.then(Instant::now);
    if let Some(e) = epoch {
        comm.install_tracing(e, &sink, stap::pipeline::msg::wire_bytes);
    }
    let parts = Partitions::new(&runner.params, &runner.assign);
    let pools = PipelinePools::default();
    let result = runner.run_rank(&mut comm, &cpis, &parts, &pools, epoch);
    // Dropping the comm waves goodbye to every peer and flushes the
    // tracer into the sink — the trace must be harvested after.
    drop(comm);
    let mut j = Json::obj([
        ("rank", Json::Num(rank as f64)),
        ("result", rank_result_to_json(&result)),
    ]);
    if runner.tracing {
        j.push(
            "traces",
            Json::arr(sink.take().iter().map(rank_trace_to_json)),
        );
    }
    println!("{RESULT_SENTINEL}{}", j.to_string_compact());
    Ok(())
}

/// Runs the configured pipeline as a process cluster and returns the
/// assembled output — or, for [`TransportKind::InProc`], delegates to
/// the thread runner so callers can sweep all three transports through
/// one entry point.
pub fn run_cluster(cfg: &ClusterConfig) -> Result<PipelineOutput, String> {
    let (runner, cpis) = build_runner(cfg);
    if cfg.transport == TransportKind::InProc {
        return runner.try_run(cpis).map_err(|e| e.to_string());
    }
    runner.validate_input(&cpis).map_err(|e| e.to_string())?;
    let size = runner.assign.world_size();
    let driver_rank = size - 1;

    // Transport bootstrap. The shm region file and the rendezvous
    // coordinator live exactly as long as this run.
    let (endpoint, _region) = match cfg.transport {
        TransportKind::Shm => {
            let region = ShmRegion::create(size).map_err(|e| format!("shm region: {e}"))?;
            (region.path().display().to_string(), Some(region))
        }
        TransportKind::Tcp => {
            // The coordinator thread exits once every rank has its port
            // table; on a failed bootstrap it leaks blocked in accept,
            // which is fine for a process that is about to exit anyway.
            let (addr, _serve) =
                spawn_coordinator(size).map_err(|e| format!("rendezvous listener: {e}"))?;
            (addr, None)
        }
        TransportKind::InProc => unreachable!(),
    };

    // Children first (they block in attach/rendezvous until everyone,
    // including the parent's driver link below, arrives).
    let mut children: Vec<Option<Child>> = Vec::with_capacity(driver_rank);
    let mut readers = Vec::with_capacity(driver_rank);
    for rank in 0..driver_rank {
        let mut child = Command::new(&cfg.exe)
            .args(child_args(cfg, rank, &endpoint))
            .envs(cfg.child_env.iter().map(|(k, v)| (k, v)))
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("spawn rank {rank} ({}): {e}", cfg.exe.display()))?;
        let stdout = child.stdout.take().expect("stdout was piped");
        readers.push(std::thread::spawn(move || {
            std::io::BufReader::new(stdout)
                .lines()
                .map_while(Result::ok)
                .collect::<Vec<String>>()
        }));
        children.push(Some(child));
    }

    let kill_all = |children: &mut Vec<Option<Child>>| {
        for c in children.iter_mut().flatten() {
            let _ = c.kill();
        }
        for c in children.iter_mut() {
            if let Some(mut c) = c.take() {
                let _ = c.wait();
            }
        }
    };

    // The parent's own rank: the driver, over the same wire.
    let link: Box<dyn WireLink> = match cfg.transport {
        TransportKind::Shm => match ShmLink::attach(std::path::Path::new(&endpoint), driver_rank) {
            Ok(l) => Box::new(l),
            Err(e) => {
                kill_all(&mut children);
                return Err(format!("driver shm attach: {e}"));
            }
        },
        TransportKind::Tcp => match TcpLink::rendezvous(&endpoint, driver_rank, size) {
            Ok(l) => Box::new(l),
            Err(e) => {
                kill_all(&mut children);
                return Err(format!("driver rendezvous: {e}"));
            }
        },
        TransportKind::InProc => unreachable!(),
    };
    let mut comm: Comm<Msg> = Comm::over_wire(link, msg_codec());
    if let Some(plan) = runner.faults.clone() {
        comm.install_fault_plan(plan, Some(nan_corruptor()));
    }
    let sink = TraceSink::new();
    let epoch = runner.tracing.then(Instant::now);
    if let Some(e) = epoch {
        comm.install_tracing(e, &sink, stap::pipeline::msg::wire_bytes);
    }
    let poison = comm.poison_handle();
    let parts = Partitions::new(&runner.params, &runner.assign);
    let pools = PipelinePools::default();

    let num_cpis = cpis.len();
    // The driver borrows the runner, so it runs on a scoped thread; the
    // scope's own thread is the supervisor.
    let (driver_result, failure) = std::thread::scope(|s| {
        let driver = s.spawn(|| {
            let mut comm = comm;
            let r = runner.run_rank(&mut comm, &cpis, &parts, &pools, epoch);
            drop(comm);
            r
        });

        // Supervision loop: reap children, fail fast on a dead rank,
        // and bound the whole run with a slack-scaled watchdog (a hung
        // wire must not hang CI).
        let deadline = Instant::now() + Duration::from_secs(stap_util::slacked_secs(120));
        let mut failure: Option<String> = None;
        loop {
            let mut all_done = true;
            for (rank, slot) in children.iter_mut().enumerate() {
                let Some(child) = slot.as_mut() else { continue };
                match child.try_wait() {
                    Ok(Some(status)) if status.success() => {
                        *slot = None;
                    }
                    Ok(Some(status)) => {
                        failure = Some(format!("rank {rank} process exited with {status}"));
                        break;
                    }
                    Ok(None) => all_done = false,
                    Err(e) => {
                        failure = Some(format!("waiting on rank {rank}: {e}"));
                        break;
                    }
                }
            }
            if failure.is_some() {
                break;
            }
            if all_done && driver.is_finished() {
                break;
            }
            if Instant::now() > deadline {
                failure = Some("cluster watchdog expired".to_string());
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        if failure.is_some() {
            // Poison the driver so its blocked receives fail fast, then
            // take the rest of the world down with the failed rank.
            poison.store(true, std::sync::atomic::Ordering::SeqCst);
            kill_all(&mut children);
        }
        (driver.join(), failure)
    });
    let child_lines: Vec<Vec<String>> = readers
        .into_iter()
        .map(|r| r.join().unwrap_or_default())
        .collect();
    if let Some(why) = failure {
        return Err(why);
    }
    let driver_result = match driver_result {
        Ok(r) => r,
        Err(p) => {
            let msg = p
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "driver panicked".to_string());
            return Err(format!("driver rank failed: {msg}"));
        }
    };

    // Harvest child results and traces from the sentinel lines.
    let mut results = Vec::with_capacity(size);
    let mut traces = Vec::new();
    for (rank, lines) in child_lines.iter().enumerate() {
        let line = lines
            .iter()
            .find_map(|l| l.strip_prefix(RESULT_SENTINEL))
            .ok_or(format!("rank {rank} exited without a result line"))?;
        let j = Json::parse(line).map_err(|e| format!("rank {rank} result: {e}"))?;
        results.push(
            rank_result_from_json(j.get("result").ok_or("missing result")?)
                .map_err(|e| format!("rank {rank} result: {e}"))?,
        );
        if let Some(Json::Arr(ts)) = j.get("traces") {
            for t in ts {
                traces
                    .push(rank_trace_from_json(t).map_err(|e| format!("rank {rank} trace: {e}"))?);
            }
        }
    }
    results.push(driver_result);
    traces.extend(sink.take());
    traces.sort_by_key(|t| t.rank);
    Ok(runner.assemble(num_cpis, results, traces, &pools))
}

/// [`run_cluster`] under relaunch supervision: a run that fails (a
/// killed rank process, a poisoned driver, a watchdog trip) is
/// relaunched from scratch up to `max_relaunches` times — the cluster
/// analogue of the serve supervisor's `max_recoveries` world-relaunch
/// loop. Returns the output and how many relaunches it took.
pub fn run_supervised(
    cfg: &ClusterConfig,
    max_relaunches: usize,
) -> Result<(PipelineOutput, usize), String> {
    let mut relaunches = 0;
    loop {
        match run_cluster(cfg) {
            Ok(out) => return Ok((out, relaunches)),
            Err(e) if relaunches < max_relaunches => {
                eprintln!("cluster run failed ({e}); relaunching ({relaunches} so far)");
                relaunches += 1;
            }
            Err(e) => return Err(format!("{e} (after {relaunches} relaunch(es))")),
        }
    }
}
