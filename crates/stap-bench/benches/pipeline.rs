//! End-to-end benches: sequential CPI processing at the paper's full
//! geometry (the single-node baseline the RTMCARM system was limited
//! to), the threaded parallel pipeline at reduced geometry, and the
//! Paragon-scale simulator itself.

use criterion::{criterion_group, criterion_main, Criterion};
use stap::core::{SequentialStap, StapParams};
use stap::cube::CCube;
use stap::pipeline::{NodeAssignment, ParallelStap};
use stap::radar::Scenario;
use stap::sim::{simulate, SimConfig};
use std::hint::black_box;

fn bench_sequential_reduced(c: &mut Criterion) {
    let params = StapParams::reduced();
    let scenario = Scenario::reduced(1);
    let cpis: Vec<CCube> = scenario.stream(2).map(|(_, _, x)| x).collect();
    c.bench_function("sequential_cpi_reduced", |b| {
        b.iter(|| {
            let mut stap = SequentialStap::for_scenario(params.clone(), &scenario);
            for cpi in &cpis {
                black_box(stap.process_cpi(0, cpi).detections.len());
            }
        })
    });
}

fn bench_sequential_paper_size(c: &mut Criterion) {
    // One full 512 x 16 x 128 CPI through the whole chain — the
    // single-instance latency the paper's round-robin baseline was
    // stuck with.
    let params = StapParams::paper();
    let scenario = Scenario::rtmcarm(7);
    let cpi = scenario.generate_cpi(2);
    let mut g = c.benchmark_group("paper_size");
    g.sample_size(10);
    g.bench_function("sequential_cpi_full_512x16x128", |b| {
        b.iter(|| {
            let mut stap = SequentialStap::for_scenario(params.clone(), &scenario);
            black_box(stap.process_cpi(2, &cpi).detections.len())
        })
    });
    g.finish();
}

fn bench_parallel_pipeline_reduced(c: &mut Criterion) {
    let params = StapParams::reduced();
    let scenario = Scenario::reduced(3);
    let cpis: Vec<CCube> = scenario.stream(5).map(|(_, _, x)| x).collect();
    let mut g = c.benchmark_group("threaded_pipeline");
    g.sample_size(10);
    g.bench_function("parallel_5cpis_reduced_tiny_assignment", |b| {
        b.iter(|| {
            let runner =
                ParallelStap::for_scenario(params.clone(), NodeAssignment::tiny(), &scenario);
            black_box(runner.run(cpis.clone()).detections.len())
        })
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    // Cost of one full 25-CPI Paragon-scale simulation (the engine
    // behind Tables 2-10).
    c.bench_function("des_simulate_case1_25cpis", |b| {
        b.iter(|| black_box(simulate(&SimConfig::paper(NodeAssignment::case1()))))
    });
}

criterion_group!(
    benches,
    bench_sequential_reduced,
    bench_sequential_paper_size,
    bench_parallel_pipeline_reduced,
    bench_simulator
);
criterion_main!(benches);
