//! End-to-end benches: sequential CPI processing at the paper's full
//! geometry (the single-node baseline the RTMCARM system was limited
//! to), the threaded parallel pipeline at reduced geometry, and the
//! Paragon-scale simulator itself.
//!
//! Runs on the in-tree `stap_util::Bench` harness (hermetic builds can't
//! resolve criterion). Pass `--quick` for a faster CI profile.

use stap::core::{SequentialStap, StapParams};
use stap::cube::CCube;
use stap::pipeline::{NodeAssignment, ParallelStap};
use stap::radar::Scenario;
use stap::sim::{simulate, SimConfig};
use stap_util::Bench;
use std::time::Duration;

fn bench_sequential_reduced(b: &Bench) {
    let params = StapParams::reduced();
    let scenario = Scenario::reduced(1);
    let cpis: Vec<CCube> = scenario.stream(2).map(|(_, _, x)| x).collect();
    b.run("sequential_cpi_reduced", || {
        let mut stap = SequentialStap::for_scenario(params.clone(), &scenario);
        let mut total = 0usize;
        for cpi in &cpis {
            total += stap.process_cpi(0, cpi).detections.len();
        }
        total
    });
}

fn bench_sequential_paper_size(b: &Bench) {
    // One full 512 x 16 x 128 CPI through the whole chain — the
    // single-instance latency the paper's round-robin baseline was
    // stuck with.
    let params = StapParams::paper();
    let scenario = Scenario::rtmcarm(7);
    let cpi = scenario.generate_cpi(2);
    b.run("sequential_cpi_full_512x16x128", || {
        let mut stap = SequentialStap::for_scenario(params.clone(), &scenario);
        stap.process_cpi(2, &cpi).detections.len()
    });
}

fn bench_parallel_pipeline_reduced(b: &Bench) {
    let params = StapParams::reduced();
    let scenario = Scenario::reduced(3);
    let cpis: Vec<CCube> = scenario.stream(5).map(|(_, _, x)| x).collect();
    b.run("parallel_5cpis_reduced_tiny_assignment", || {
        let runner = ParallelStap::for_scenario(params.clone(), NodeAssignment::tiny(), &scenario);
        runner.run(cpis.clone()).detections.len()
    });
}

fn bench_simulator(b: &Bench) {
    // Cost of one full 25-CPI Paragon-scale simulation (the engine
    // behind Tables 2-10).
    b.run("des_simulate_case1_25cpis", || {
        simulate(&SimConfig::paper(NodeAssignment::case1()))
    });
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut b = if quick { Bench::quick() } else { Bench::new() };
    // These are heavyweight end-to-end runs; keep batch counts small so
    // the full-geometry CPI doesn't take minutes.
    b.batches = b.batches.min(5);
    if !quick {
        b.measure = Duration::from_millis(2500);
        b.warmup = Duration::from_millis(200);
    }
    bench_sequential_reduced(&b);
    bench_sequential_paper_size(&b);
    bench_parallel_pipeline_reduced(&b);
    bench_simulator(&b);
}
