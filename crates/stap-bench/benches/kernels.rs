//! Kernel microbenchmarks: the building blocks behind Table 1's per-task
//! costs, at the paper's exact sizes (N = 128 Doppler FFTs, K = 512
//! pulse-compression FFTs, J = 16 / 2J = 32 QR columns, M x J x K
//! beamforming products).
//!
//! Runs on the in-tree `stap_util::Bench` harness (hermetic builds can't
//! resolve criterion). Pass `--quick` for a faster CI profile.

use stap::core::cfar;
use stap::core::doppler::DopplerProcessor;
use stap::core::params::StapParams;
use stap::core::pulse::PulseCompressor;
use stap::core::training::{easy_snapshot, hard_snapshot};
use stap::core::weights::hard_constraint;
use stap::cube::{CCube, RCube};
use stap::math::fft::{Fft, FftScratch};
use stap::math::qr::{qr_r, qr_update};
use stap::math::solve::{constrained_lstsq, constrained_lstsq_from_r};
use stap::math::{CMat, Cx};
use stap_util::Bench;

fn det_mat(rows: usize, cols: usize, seed: u64) -> CMat {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    CMat::from_fn(rows, cols, |_, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        Cx::new(
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5,
            (state >> 13) as f64 / (1u64 << 51) as f64 - 1.0,
        )
    })
}

fn bench_fft(b: &Bench) {
    for n in [128usize, 512] {
        let plan = Fft::new(n);
        let data: Vec<Cx> = (0..n).map(|i| Cx::new(i as f64, -(i as f64))).collect();
        let mut buf = data.clone();
        let mut scratch = FftScratch::new();
        b.run(&format!("fft/pow2_{n}"), || {
            buf.copy_from_slice(&data);
            plan.forward_with_scratch(&mut buf, &mut scratch);
            buf[0]
        });
    }
    // Radix-4 vs radix-2 on a power-of-4 length.
    let n = 256usize;
    let data: Vec<Cx> = (0..n).map(|i| Cx::new(i as f64, -(i as f64))).collect();
    for (name, plan) in [
        ("fft/radix4_256", Fft::new(n)),
        ("fft/radix2_256", Fft::new_radix2(n)),
    ] {
        let mut buf = data.clone();
        let mut scratch = FftScratch::new();
        b.run(name, || {
            buf.copy_from_slice(&data);
            plan.forward_with_scratch(&mut buf, &mut scratch);
            buf[0]
        });
    }
}

fn bench_qr(b: &Bench) {
    // Easy-weight shape: (3 x 24 training rows + J constraints) x J.
    let easy = det_mat(72, 16, 1);
    b.run("qr/householder_72x16", || qr_r(&easy));
    // Hard-weight recursion: 2J x 2J triangular + 32 new rows.
    let r_old = qr_r(&det_mat(64, 32, 2));
    let newrows = det_mat(32, 32, 3);
    b.run("qr/recursive_update_32x32_plus32", || {
        qr_update(&r_old, 0.6, &newrows)
    });
    // Full refactorization of the same stacked system, for comparison
    // with the recursive update (the paper's efficiency argument).
    let stacked = r_old.scale(0.6).vstack(&newrows);
    b.run("qr/full_refactor_64x32", || qr_r(&stacked));
}

fn bench_weight_solves(b: &Bench) {
    let p = StapParams::paper();
    let steering = det_mat(16, 6, 4);
    let training = det_mat(72, 16, 5);
    let eye = CMat::identity(16);
    b.run("weights/easy_constrained_lstsq_bin", || {
        constrained_lstsq(&training, &eye, 0.5, &steering)
    });
    let r = qr_r(&det_mat(96, 32, 6));
    let cons = hard_constraint(&p, 4);
    let steer = det_mat(16, 6, 7);
    b.run("weights/hard_constrained_from_r_bin", || {
        constrained_lstsq_from_r(&r, &cons, 0.5, &steer)
    });
}

fn bench_beamform(b: &Bench) {
    // One easy bin: (J x M)^H . (J x K).
    let w = det_mat(16, 6, 8);
    let data = det_mat(16, 512, 9);
    let mut out = CMat::zeros(6, 512);
    b.run("beamform/easy_bin_16x6_x_16x512", || {
        w.hermitian_matmul_into(&data, &mut out);
        out[(0, 0)]
    });
    let wh = det_mat(32, 6, 10);
    let datah = det_mat(32, 512, 11);
    let mut outh = CMat::zeros(6, 512);
    b.run("beamform/hard_bin_32x6_x_32x512", || {
        wh.hermitian_matmul_into(&datah, &mut outh);
        outh[(0, 0)]
    });
}

fn bench_doppler(b: &Bench) {
    let p = StapParams::paper();
    let proc = DopplerProcessor::new(&p);
    // One Doppler-node slab at case-3 size: K/8 = 64 range rows.
    let slab = CCube::from_fn([64, p.j_channels, p.n_pulses], |k, j, n| {
        Cx::new(((k * j + n) % 13) as f64 - 6.0, ((k + j * n) % 7) as f64)
    });
    let mut out = CCube::zeros([64, 2 * p.j_channels, p.n_pulses]);
    let mut scratch = FftScratch::new();
    b.run("doppler_slab_64rows_paper_size", || {
        proc.process_rows_with(&slab, 0, &mut out, &mut scratch);
        out[(0, 0, 0)]
    });
}

fn bench_pulse(b: &Bench) {
    let p = StapParams::paper();
    let pc = PulseCompressor::new(&p);
    let cube = CCube::from_fn([8, p.m_beams, p.k_range], |a, b2, c2| {
        Cx::new(((a + b2 * c2) % 9) as f64 - 4.0, ((a * c2) % 5) as f64)
    });
    b.run("pulse_compression_8bins_paper_size", || pc.process(&cube));
}

fn bench_cfar(b: &Bench) {
    let p = StapParams::paper();
    let cube = RCube::from_fn([8, p.m_beams, p.k_range], |a, b2, c2| {
        ((a * 31 + b2 * 17 + c2) % 97) as f64 + 1.0
    });
    b.run("cfar_8bins_paper_size", || cfar::cfar(&p, &cube));
}

fn bench_snapshots(b: &Bench) {
    // The "data collection" gather cost the paper highlights.
    let p = StapParams::paper();
    let cube = CCube::from_fn([p.k_range, 2 * p.j_channels, p.n_pulses], |a, b2, c2| {
        Cx::new((a % 11) as f64, ((b2 + c2) % 7) as f64)
    });
    b.run("easy_snapshot_gather", || easy_snapshot(&cube, &p, 64));
    b.run("hard_snapshot_gather", || hard_snapshot(&cube, &p, 4, 2));
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let b = if quick { Bench::quick() } else { Bench::new() };
    bench_fft(&b);
    bench_qr(&b);
    bench_weight_solves(&b);
    bench_beamform(&b);
    bench_doppler(&b);
    bench_pulse(&b);
    bench_cfar(&b);
    bench_snapshots(&b);
}
