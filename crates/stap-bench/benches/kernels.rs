//! Kernel microbenchmarks: the building blocks behind Table 1's per-task
//! costs, at the paper's exact sizes (N = 128 Doppler FFTs, K = 512
//! pulse-compression FFTs, J = 16 / 2J = 32 QR columns, M x J x K
//! beamforming products).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use stap::core::doppler::DopplerProcessor;
use stap::core::params::StapParams;
use stap::core::pulse::PulseCompressor;
use stap::core::training::{easy_snapshot, hard_snapshot};
use stap::core::weights::hard_constraint;
use stap::core::cfar;
use stap::cube::{CCube, RCube};
use stap::math::fft::Fft;
use stap::math::qr::{qr_r, qr_update};
use stap::math::solve::{constrained_lstsq, constrained_lstsq_from_r};
use stap::math::{CMat, Cx};
use std::hint::black_box;

fn det_mat(rows: usize, cols: usize, seed: u64) -> CMat {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    CMat::from_fn(rows, cols, |_, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        Cx::new(
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5,
            (state >> 13) as f64 / (1u64 << 51) as f64 - 1.0,
        )
    })
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for n in [128usize, 512] {
        let plan = Fft::new(n);
        let data: Vec<Cx> = (0..n).map(|i| Cx::new(i as f64, -(i as f64))).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("pow2_{n}"), |b| {
            b.iter(|| {
                let mut buf = data.clone();
                plan.forward(&mut buf);
                black_box(buf)
            })
        });
    }
    // Radix-4 vs radix-2 on a power-of-4 length.
    let n = 256usize;
    let data: Vec<Cx> = (0..n).map(|i| Cx::new(i as f64, -(i as f64))).collect();
    for (name, plan) in [("radix4_256", Fft::new(n)), ("radix2_256", Fft::new_radix2(n))] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut buf = data.clone();
                plan.forward(&mut buf);
                black_box(buf)
            })
        });
    }
    g.finish();
}

fn bench_qr(c: &mut Criterion) {
    let mut g = c.benchmark_group("qr");
    // Easy-weight shape: (3 x 24 training rows + J constraints) x J.
    let easy = det_mat(72, 16, 1);
    g.bench_function("householder_72x16", |b| b.iter(|| black_box(qr_r(&easy))));
    // Hard-weight recursion: 2J x 2J triangular + 32 new rows.
    let r_old = qr_r(&det_mat(64, 32, 2));
    let newrows = det_mat(32, 32, 3);
    g.bench_function("recursive_update_32x32_plus32", |b| {
        b.iter(|| black_box(qr_update(&r_old, 0.6, &newrows)))
    });
    // Full refactorization of the same stacked system, for comparison
    // with the recursive update (the paper's efficiency argument).
    let stacked = r_old.scale(0.6).vstack(&newrows);
    g.bench_function("full_refactor_64x32", |b| {
        b.iter(|| black_box(qr_r(&stacked)))
    });
    g.finish();
}

fn bench_weight_solves(c: &mut Criterion) {
    let mut g = c.benchmark_group("weights");
    let p = StapParams::paper();
    let steering = det_mat(16, 6, 4);
    let training = det_mat(72, 16, 5);
    let eye = CMat::identity(16);
    g.bench_function("easy_constrained_lstsq_bin", |b| {
        b.iter(|| black_box(constrained_lstsq(&training, &eye, 0.5, &steering)))
    });
    let r = qr_r(&det_mat(96, 32, 6));
    let cons = hard_constraint(&p, 4);
    let steer = det_mat(16, 6, 7);
    g.bench_function("hard_constrained_from_r_bin", |b| {
        b.iter(|| black_box(constrained_lstsq_from_r(&r, &cons, 0.5, &steer)))
    });
    g.finish();
}

fn bench_beamform(c: &mut Criterion) {
    let mut g = c.benchmark_group("beamform");
    // One easy bin: (J x M)^H . (J x K).
    let w = det_mat(16, 6, 8);
    let data = det_mat(16, 512, 9);
    g.throughput(Throughput::Elements(6 * 16 * 512));
    g.bench_function("easy_bin_16x6_x_16x512", |b| {
        b.iter(|| black_box(w.hermitian_matmul(&data)))
    });
    let wh = det_mat(32, 6, 10);
    let datah = det_mat(32, 512, 11);
    g.throughput(Throughput::Elements(6 * 32 * 512));
    g.bench_function("hard_bin_32x6_x_32x512", |b| {
        b.iter(|| black_box(wh.hermitian_matmul(&datah)))
    });
    g.finish();
}

fn bench_doppler(c: &mut Criterion) {
    let p = StapParams::paper();
    let proc = DopplerProcessor::new(&p);
    // One Doppler-node slab at case-3 size: K/8 = 64 range rows.
    let slab = CCube::from_fn([64, p.j_channels, p.n_pulses], |k, j, n| {
        Cx::new(((k * j + n) % 13) as f64 - 6.0, ((k + j * n) % 7) as f64)
    });
    c.bench_function("doppler_slab_64rows_paper_size", |b| {
        b.iter(|| {
            let mut out = CCube::zeros([64, 2 * p.j_channels, p.n_pulses]);
            proc.process_rows(&slab, 0, &mut out);
            black_box(out)
        })
    });
}

fn bench_pulse(c: &mut Criterion) {
    let p = StapParams::paper();
    let pc = PulseCompressor::new(&p);
    let cube = CCube::from_fn([8, p.m_beams, p.k_range], |a, b2, c2| {
        Cx::new(((a + b2 * c2) % 9) as f64 - 4.0, ((a * c2) % 5) as f64)
    });
    c.bench_function("pulse_compression_8bins_paper_size", |b| {
        b.iter(|| black_box(pc.process(&cube)))
    });
}

fn bench_cfar(c: &mut Criterion) {
    let p = StapParams::paper();
    let cube = RCube::from_fn([8, p.m_beams, p.k_range], |a, b2, c2| {
        ((a * 31 + b2 * 17 + c2) % 97) as f64 + 1.0
    });
    c.bench_function("cfar_8bins_paper_size", |b| {
        b.iter(|| black_box(cfar::cfar(&p, &cube)))
    });
}

fn bench_snapshots(c: &mut Criterion) {
    // The "data collection" gather cost the paper highlights.
    let p = StapParams::paper();
    let cube = CCube::from_fn([p.k_range, 2 * p.j_channels, p.n_pulses], |a, b2, c2| {
        Cx::new((a % 11) as f64, ((b2 + c2) % 7) as f64)
    });
    c.bench_function("easy_snapshot_gather", |b| {
        b.iter(|| black_box(easy_snapshot(&cube, &p, 64)))
    });
    c.bench_function("hard_snapshot_gather", |b| {
        b.iter(|| black_box(hard_snapshot(&cube, &p, 4, 2)))
    });
}

criterion_group!(
    benches,
    bench_fft,
    bench_qr,
    bench_weight_solves,
    bench_beamform,
    bench_doppler,
    bench_pulse,
    bench_cfar,
    bench_snapshots
);
criterion_main!(benches);
