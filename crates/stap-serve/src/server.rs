//! The long-running ingestion server over the resident pipeline.
//!
//! Three background threads per server:
//!
//! * **batcher** — pulls admitted CPIs off the admission queue in
//!   arrival order, coalesces up to `max_group` of them (naturally
//!   mixing streams) into one slot group and pushes it down a *bounded*
//!   slot channel. The bound is the credit supply: when `window` slots
//!   are in flight the batcher blocks, admitted CPIs pile up against
//!   each stream's queue depth, and further submissions bounce with
//!   [`Reject::QueueFull`] — backpressure propagates to producers
//!   instead of growing queues without bound;
//! * **engine** — [`stap_pipeline::ResidentStap::serve`] on the slot
//!   channel: the seven resident task nodes plus driver;
//! * **collector** — drains per-CPI completions, records per-stream
//!   latency samples and releases admission credits.
//!
//! Submission is allocation-free in steady state: producers draw cubes
//! from the server's shared pool ([`StapServer::take_cube`]) and the
//! pipeline recycles every block it consumes.

use crate::admission::{AdmissionConfig, Ingest, Pending, Reject};
use crate::health::StreamHealth;
use crate::slo::LatencyProfile;
use crate::supervisor::{run_supervised, Recovered, SupervisorConfig, SupervisorHooks};
use stap_cube::CCube;
use stap_math::Cx;
use stap_pipeline::runner::PipelineError;
use stap_pipeline::{CpiJob, ElasticStap, Rebalance, ResidentStap, ResidentSummary, RuntimePolicy};
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Server limits and batching knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Pipeline slots in flight (the slot channel bound / credit supply).
    pub window: usize,
    /// Maximum CPIs coalesced into one slot.
    pub max_group: usize,
    /// Per-stream admission bound (see [`AdmissionConfig`]).
    pub queue_depth: usize,
    /// Soft mailbox high-water mark inside the pipeline (0 = off).
    pub mailbox_high_water: usize,
    /// Expected concurrent streams; sizes the pool pre-warm
    /// ([`ResidentStap::reserve`]). More streams than the hint still
    /// work — the pool grows on (counted) misses.
    pub streams_hint: usize,
    /// Run the elastic engine ([`ElasticStap`]) instead of a fixed
    /// resident world: rank shifts toward the measured bottleneck at
    /// slot boundaries, triggered by load spikes and degradation
    /// events.
    pub elastic: bool,
    /// Runtime policy for the elastic engine (cooldown, imbalance
    /// threshold); typically `stap_sim::derive_policy` output.
    pub policy: RuntimePolicy,
    /// Admission backlog (ready, undispatched CPIs) at which the
    /// batcher raises a load-spike rebalance trigger (0 = off; only
    /// meaningful with `elastic`).
    pub spike_backlog: usize,
    /// Per-stream completions treated as warm-up/ramp: excluded from
    /// the latency percentiles and reported separately.
    pub warmup_cpis: u32,
    /// Run the engine under checkpoint/restore supervision (see
    /// [`crate::supervisor`]). Mutually exclusive with `elastic`.
    pub supervised: Option<SupervisorConfig>,
    /// Screen submissions and CFAR power lanes for non-finite samples:
    /// a NaN/Inf cube bounces at admission with [`Reject::NonFinite`]
    /// (feeding the quarantine streak) instead of poisoning the
    /// pipeline's recursive state, and in-transit corruption surfaces
    /// as a `degraded` completion.
    pub screen: bool,
    /// Consecutive per-stream failures before quarantine (0 = off); see
    /// [`AdmissionConfig::quarantine_streak`].
    pub quarantine_streak: u32,
    /// Initial quarantine window in milliseconds (doubles per
    /// re-offense, capped); see [`AdmissionConfig::probation_ms`].
    pub probation_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            window: 4,
            max_group: 4,
            queue_depth: 8,
            mailbox_high_water: 64,
            streams_hint: 4,
            elastic: false,
            policy: RuntimePolicy::default(),
            spike_backlog: 0,
            warmup_cpis: 2,
            supervised: None,
            screen: false,
            quarantine_streak: 0,
            probation_ms: 250,
        }
    }
}

/// Per-stream completion statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamStats {
    /// Stream id.
    pub stream: u16,
    /// CPIs completed.
    pub cpis: u64,
    /// Total detections reported.
    pub detections: u64,
    /// Latency percentiles over this stream's completions.
    pub latency: LatencyProfile,
}

/// Everything a serve session reports at shutdown.
#[derive(Clone, Debug, Default)]
pub struct ServeSummary {
    /// Per-stream stats, sorted by stream id.
    pub streams: Vec<StreamStats>,
    /// CPIs completed across all streams.
    pub cpis: u64,
    /// Pipeline slots processed (`cpis / slots` = achieved batching).
    pub slots: u64,
    /// Wall-clock seconds from server start to engine shutdown.
    pub elapsed: f64,
    /// Aggregate sustained throughput.
    pub cpis_per_sec: f64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// CPIs purged by stream disconnects.
    pub purged: u64,
    /// Latency percentiles over all steady-state completions (each
    /// stream's first `warmup_cpis` completions are excluded).
    pub aggregate: LatencyProfile,
    /// Warm-up/ramp completions excluded from the percentiles.
    pub warmup_cpis: u64,
    /// Rank shifts the elastic engine applied (0 for a fixed world).
    pub rebalances: u64,
    /// Per-stream health rows (outcomes, rejects by reason, quarantine
    /// record), sorted by stream id.
    pub stream_health: Vec<StreamHealth>,
    /// Quarantine firings across all streams.
    pub quarantines: u64,
    /// Supervisor recoveries performed (0 for an unsupervised server).
    pub recoveries: u64,
    /// Every recovery event, in order.
    pub recovery_log: Vec<Recovered>,
    /// Sub-CPIs lost across recoveries (streams that disconnected
    /// before their retained slots could be replayed).
    pub lost_cpis: u64,
    /// Checkpoints the supervisor banked.
    pub checkpoints: u64,
    /// The resident pipeline's own summary (health, pool traffic).
    pub resident: ResidentSummary,
}

impl ServeSummary {
    /// JSON rendering for `stapctl serve`/`loadgen` and the CI smoke
    /// stage (which asserts the SLO fields exist and the pools stayed
    /// miss-free in steady state).
    pub fn to_json(&self) -> stap_util::Json {
        use stap_util::Json;
        let profile = |p: &LatencyProfile| {
            Json::obj([
                ("p50_ms", Json::Num(p.p50_ms)),
                ("p99_ms", Json::Num(p.p99_ms)),
                ("max_ms", Json::Num(p.max_ms)),
            ])
        };
        Json::obj([
            ("cpis", Json::Num(self.cpis as f64)),
            ("slots", Json::Num(self.slots as f64)),
            ("elapsed_s", Json::Num(self.elapsed)),
            ("cpis_per_sec", Json::Num(self.cpis_per_sec)),
            ("rejected", Json::Num(self.rejected as f64)),
            ("purged", Json::Num(self.purged as f64)),
            ("warmup_cpis", Json::Num(self.warmup_cpis as f64)),
            ("rebalances", Json::Num(self.rebalances as f64)),
            ("latency", profile(&self.aggregate)),
            (
                "streams",
                Json::arr(self.streams.iter().map(|s| {
                    Json::obj([
                        ("stream", Json::Num(s.stream as f64)),
                        ("cpis", Json::Num(s.cpis as f64)),
                        ("detections", Json::Num(s.detections as f64)),
                        ("latency", profile(&s.latency)),
                    ])
                })),
            ),
            (
                "pool",
                Json::obj([
                    ("cx_hits", Json::Num(self.resident.pool_cx.hits as f64)),
                    ("cx_misses", Json::Num(self.resident.pool_cx.misses as f64)),
                    ("real_hits", Json::Num(self.resident.pool_real.hits as f64)),
                    (
                        "real_misses",
                        Json::Num(self.resident.pool_real.misses as f64),
                    ),
                ]),
            ),
            (
                "health",
                Json::obj([
                    ("faults", Json::Bool(self.resident.health.any())),
                    (
                        "dropped_cpis",
                        Json::Num(self.resident.health.dropped_cpis as f64),
                    ),
                    (
                        "degraded_cpis",
                        Json::Num(self.resident.health.degraded_cpis as f64),
                    ),
                    (
                        "mailbox_over_high_water",
                        Json::Num(self.resident.health.mailbox_over_high_water as f64),
                    ),
                    (
                        "max_mailbox_depth",
                        Json::Num(
                            self.resident
                                .health
                                .max_mailbox_depth
                                .iter()
                                .copied()
                                .max()
                                .unwrap_or(0) as f64,
                        ),
                    ),
                    (
                        "edges",
                        Json::arr(stap_pipeline::msg::EDGE_NAMES.iter().enumerate().map(
                            |(i, name)| {
                                let e = &self.resident.health.edges[i];
                                Json::obj([
                                    ("edge", Json::Str((*name).to_string())),
                                    ("retries", Json::Num(e.retries as f64)),
                                    ("dropped", Json::Num(e.dropped as f64)),
                                    ("stale_weights", Json::Num(e.stale_weights as f64)),
                                    ("quarantined", Json::Num(e.quarantined as f64)),
                                    ("late_or_dup", Json::Num(e.late_or_dup as f64)),
                                ])
                            },
                        )),
                    ),
                ]),
            ),
            (
                "stream_health",
                Json::arr(self.stream_health.iter().map(StreamHealth::to_json)),
            ),
            ("quarantines", Json::Num(self.quarantines as f64)),
            (
                "recovery",
                Json::obj([
                    ("recoveries", Json::Num(self.recoveries as f64)),
                    ("lost_cpis", Json::Num(self.lost_cpis as f64)),
                    ("checkpoints", Json::Num(self.checkpoints as f64)),
                    (
                        "log",
                        Json::arr(self.recovery_log.iter().map(|r| {
                            Json::obj([
                                ("epoch", Json::Num(r.epoch as f64)),
                                ("at_slot", Json::Num(r.at_slot as f64)),
                                ("lost_cpis", Json::Num(r.lost_cpis as f64)),
                                ("error", Json::Str(r.error.clone())),
                            ])
                        })),
                    ),
                ]),
            ),
        ])
    }
}

/// What the engine thread (fixed, elastic or supervised) reports back.
struct EngineOut {
    resident: ResidentSummary,
    rebalances: u64,
    recoveries: Vec<Recovered>,
    checkpoints: u64,
    lost_cpis: u64,
}

struct Collected {
    /// Steady-state latency samples (warm-up completions excluded).
    latencies: HashMap<u16, Vec<f64>>,
    /// All completions per stream, warm-up included.
    completed: HashMap<u16, u64>,
    detections: HashMap<u16, u64>,
}

struct Shared {
    ing: Mutex<Ingest>,
    cv: Condvar,
}

/// A running multi-stream STAP server. Construct with
/// [`StapServer::start`], feed it with [`StapServer::submit`], stop it
/// with [`StapServer::shutdown`].
pub struct StapServer {
    shared: Arc<Shared>,
    pool: stap_cube::SharedBufferPool<Cx>,
    shape: [usize; 3],
    screen: bool,
    t0: Instant,
    batcher: Option<JoinHandle<()>>,
    engine: Option<JoinHandle<Result<EngineOut, PipelineError>>>,
    collector: Option<JoinHandle<Collected>>,
    control: Option<mpsc::Sender<Rebalance>>,
}

impl StapServer {
    /// Builds the resident pipeline, pre-warms its pools for
    /// `cfg.streams_hint` streams and starts the background threads.
    pub fn start(resident: ResidentStap, cfg: ServerConfig) -> StapServer {
        StapServer::start_with_tap(resident, cfg, None)
    }

    /// Like [`StapServer::start`], but every completion is also
    /// forwarded (detections and all) to `tap` — the hook consumers use
    /// to receive results; a dropped tap is ignored.
    pub fn start_with_tap(
        resident: ResidentStap,
        cfg: ServerConfig,
        tap: Option<mpsc::Sender<stap_pipeline::CpiDone>>,
    ) -> StapServer {
        assert!(
            !(cfg.elastic && cfg.supervised.is_some()),
            "supervised and elastic modes are mutually exclusive"
        );
        let resident = resident
            .with_window(cfg.window)
            .with_max_group(cfg.max_group)
            .with_mailbox_high_water(cfg.mailbox_high_water)
            .with_screen(cfg.screen);
        resident.reserve(cfg.streams_hint, cfg.queue_depth);
        let p = &resident.params;
        let shape = [p.k_range, p.j_channels, p.n_pulses];
        let pool = resident.pools().cx.clone();
        if let Some(sup) = &cfg.supervised {
            // The supervisor retains a pool-backed copy of every
            // dispatched group until the next checkpoint, plus replay
            // copies after a failure — pre-warm that headroom so
            // recovery does not hit the allocator.
            let extra = (sup.checkpoint_every as usize + cfg.window) * cfg.max_group.max(1);
            pool.reserve(shape.iter().product(), extra);
        }
        let shared = Arc::new(Shared {
            ing: Mutex::new(Ingest::new(AdmissionConfig {
                queue_depth: cfg.queue_depth,
                shape,
                quarantine_streak: cfg.quarantine_streak,
                probation_ms: cfg.probation_ms,
            })),
            cv: Condvar::new(),
        });

        // Credit-based backpressure: the slot channel holds at most
        // `window` undelivered groups; a full channel blocks the batcher.
        let (jobs_tx, jobs_rx) = mpsc::sync_channel::<Vec<CpiJob>>(cfg.window);
        let (done_tx, done_rx) = mpsc::channel();

        let max_group = cfg.max_group.max(1);
        // The elastic control channel exists even for a fixed world so
        // `degrade`/`rebalance_now` are always callable; a fixed engine
        // simply never reads it.
        let (ctl_tx, ctl_rx) = mpsc::channel::<Rebalance>();
        let spike_backlog = if cfg.elastic { cfg.spike_backlog } else { 0 };
        let spike_tx = ctl_tx.clone();
        let sh = shared.clone();
        let batcher = std::thread::spawn(move || {
            let mut batch: Vec<Pending> = Vec::with_capacity(max_group);
            let mut over = false;
            loop {
                batch.clear();
                let backlog;
                {
                    let mut ing = sh.ing.lock().unwrap();
                    loop {
                        ing.next_group_into(max_group, &mut batch);
                        if !batch.is_empty() {
                            break;
                        }
                        if !ing.open {
                            return; // drops jobs_tx -> engine drains and exits
                        }
                        ing = sh.cv.wait(ing).unwrap();
                    }
                    backlog = ing.ready.len();
                }
                // Load-spike trigger on the rising edge: admitted CPIs
                // piling up faster than slots drain them means the
                // current assignment is under-serving the bottleneck.
                if spike_backlog > 0 {
                    let now_over = backlog >= spike_backlog;
                    if now_over && !over {
                        let _ = spike_tx.send(Rebalance::Now {
                            reason: format!("load-spike:backlog={backlog}"),
                        });
                    }
                    over = now_over;
                }
                let jobs: Vec<CpiJob> = batch
                    .drain(..)
                    .map(|p| CpiJob {
                        stream: p.stream,
                        scpi: p.scpi,
                        cube: p.cube,
                        submitted: p.submitted,
                    })
                    .collect();
                if jobs_tx.send(jobs).is_err() {
                    return; // engine died; shutdown() will surface the error
                }
            }
        });

        let engine = if let Some(sup) = cfg.supervised.clone() {
            let ret = shared.clone();
            let lost = shared.clone();
            let hooks = SupervisorHooks {
                is_retired: Box::new(move |s| ret.ing.lock().unwrap().is_retired(s)),
                on_lost: Box::new(move |s| lost.ing.lock().unwrap().note_lost(s)),
            };
            std::thread::spawn(move || {
                run_supervised(resident, sup, jobs_rx, done_tx, hooks).map(|o| EngineOut {
                    resident: o.resident,
                    rebalances: 0,
                    recoveries: o.recoveries,
                    checkpoints: o.checkpoints,
                    lost_cpis: o.lost_cpis,
                })
            })
        } else if cfg.elastic {
            let el = ElasticStap::new(
                resident.params.clone(),
                resident.assign,
                resident.steering.clone(),
            )
            .with_policy(cfg.policy)
            .with_window(cfg.window)
            .with_max_group(cfg.max_group)
            .with_mailbox_high_water(cfg.mailbox_high_water)
            .with_reserve_hints(cfg.streams_hint, cfg.queue_depth)
            .with_shared_pools(resident.pools().clone());
            std::thread::spawn(move || {
                el.serve(jobs_rx, done_tx, ctl_rx).map(|e| EngineOut {
                    resident: e.merged_resident(),
                    rebalances: e.rebalances,
                    recoveries: Vec::new(),
                    checkpoints: 0,
                    lost_cpis: 0,
                })
            })
        } else {
            std::thread::spawn(move || {
                resident.serve(jobs_rx, done_tx).map(|s| EngineOut {
                    resident: s,
                    rebalances: 0,
                    recoveries: Vec::new(),
                    checkpoints: 0,
                    lost_cpis: 0,
                })
            })
        };

        let sh = shared.clone();
        let warmup = cfg.warmup_cpis;
        let collector = std::thread::spawn(move || {
            let mut out = Collected {
                latencies: HashMap::new(),
                completed: HashMap::new(),
                detections: HashMap::new(),
            };
            while let Ok(d) = done_rx.recv() {
                *out.completed.entry(d.stream).or_default() += 1;
                if d.scpi >= warmup {
                    out.latencies.entry(d.stream).or_default().push(d.latency);
                }
                *out.detections.entry(d.stream).or_default() += d.detections.len() as u64;
                sh.ing
                    .lock()
                    .unwrap()
                    .complete(d.stream, d.degraded, Instant::now());
                // Wake producers blocked in `wait_ready` (the batcher
                // also wakes, rechecks and goes back to sleep — cheap).
                sh.cv.notify_all();
                if let Some(t) = &tap {
                    let _ = t.send(d);
                }
            }
            out
        });

        StapServer {
            shared,
            pool,
            shape,
            screen: cfg.screen,
            t0: Instant::now(),
            batcher: Some(batcher),
            engine: Some(engine),
            collector: Some(collector),
            control: if cfg.elastic { Some(ctl_tx) } else { None },
        }
    }

    /// Reports a rank-loss / degradation event on `task` (0..7): an
    /// elastic engine shifts a rank toward it at the next slot
    /// boundary, bypassing cooldown and imbalance checks. A no-op on a
    /// fixed-assignment server.
    pub fn degrade(&self, task: usize) {
        if let Some(c) = &self.control {
            let _ = c.send(Rebalance::Degraded { task });
        }
    }

    /// Requests a rebalance at the next slot boundary (subject to the
    /// policy cooldown). A no-op on a fixed-assignment server.
    pub fn rebalance_now(&self, reason: impl Into<String>) {
        if let Some(c) = &self.control {
            let _ = c.send(Rebalance::Now {
                reason: reason.into(),
            });
        }
    }

    /// The cube shape this server accepts (`[K, J, N]`).
    pub fn shape(&self) -> [usize; 3] {
        self.shape
    }

    /// Draws a correctly-shaped cube from the server's pool, filled by
    /// `f(k, j, n)`. Submitting pool cubes keeps the steady state
    /// allocation-free end to end.
    pub fn take_cube(&self, f: impl FnMut(usize, usize, usize) -> Cx) -> CCube {
        self.pool.take_cube(self.shape, f)
    }

    /// Draws a pool cube pre-filled from `src` in one slice copy — the
    /// fast path for producers that already hold a CPI cube (A/D
    /// buffers, replayed captures) and only need it in pool-recycled
    /// memory for submission.
    pub fn take_cube_from(&self, src: &CCube) -> CCube {
        self.pool.take_cube_from(src)
    }

    /// Registers a stream id (idempotent while connected).
    pub fn register(&self, stream: u16) {
        self.shared.ing.lock().unwrap().register(stream);
    }

    /// Cheap admission probe: true when a [`StapServer::submit`] for
    /// `stream` would be admitted right now. Producers use this to
    /// avoid filling a cube they are about to have bounced (with one
    /// producer per stream, a `true` answer only gets *more* true until
    /// that producer submits).
    pub fn ready_for(&self, stream: u16) -> bool {
        self.shared.ing.lock().unwrap().ready_for(stream)
    }

    /// Blocks until `stream` has admission headroom (a completion freed
    /// a unit of its queue depth) or the server stops accepting. Returns
    /// the number of times the producer had to wait — the backpressure
    /// event count. The stream must be registered: waiting on an
    /// unregistered stream only ends at shutdown.
    pub fn wait_ready(&self, stream: u16) -> u64 {
        let mut waits = 0;
        let mut ing = self.shared.ing.lock().unwrap();
        while ing.open && !ing.ready_for(stream) {
            waits += 1;
            ing = self.shared.cv.wait(ing).unwrap();
        }
        waits
    }

    /// Submits one CPI for `stream`. Returns the assigned per-stream
    /// sequence number, or the rejection reason (admission is
    /// non-blocking: on [`Reject::QueueFull`] the producer decides
    /// whether to retry, shed or fail over).
    pub fn submit(&self, stream: u16, cube: CCube) -> Result<u32, Reject> {
        let now = Instant::now();
        // Screen outside the admission lock: the finiteness scan is one
        // pass over the cube and must not serialize other producers.
        if self.screen && !cube.is_finite() {
            let reject = self.shared.ing.lock().unwrap().note_nonfinite(stream, now);
            self.pool.recycle(cube);
            return Err(reject);
        }
        let r = self.shared.ing.lock().unwrap().submit(stream, cube, now);
        match r {
            Ok(scpi) => {
                self.shared.cv.notify_one();
                Ok(scpi)
            }
            Err((reject, cube)) => {
                // Rejected cubes go back to the pool, not the allocator.
                self.pool.recycle(cube);
                Err(reject)
            }
        }
    }

    /// Disconnects a stream: deregisters it and purges its
    /// not-yet-dispatched CPIs (in-pipeline CPIs still complete).
    /// Returns the number purged.
    pub fn disconnect(&self, stream: u16) -> usize {
        let cubes = self.shared.ing.lock().unwrap().disconnect(stream);
        let n = cubes.len();
        for c in cubes {
            self.pool.recycle(c);
        }
        n
    }

    /// Stops admission, drains everything in flight and returns the
    /// session summary.
    pub fn shutdown(mut self) -> Result<ServeSummary, PipelineError> {
        {
            let mut ing = self.shared.ing.lock().unwrap();
            ing.open = false;
        }
        self.shared.cv.notify_all();
        self.batcher
            .take()
            .unwrap()
            .join()
            .expect("batcher panicked");
        let out = self
            .engine
            .take()
            .unwrap()
            .join()
            .expect("engine panicked")?;
        let EngineOut {
            resident,
            rebalances,
            recoveries,
            checkpoints,
            lost_cpis,
        } = out;
        let collected = self
            .collector
            .take()
            .unwrap()
            .join()
            .expect("collector panicked");
        let elapsed = self.t0.elapsed().as_secs_f64();

        let (rejected, purged, stream_health, quarantines) = {
            let ing = self.shared.ing.lock().unwrap();
            (
                ing.rejected,
                ing.purged,
                ing.stream_health(Instant::now()),
                ing.quarantines(),
            )
        };
        let mut streams: Vec<StreamStats> = Vec::new();
        let mut all: Vec<f64> = Vec::new();
        let mut warmup_cpis: u64 = 0;
        for (&stream, &completed) in &collected.completed {
            let mut sample = collected
                .latencies
                .get(&stream)
                .cloned()
                .unwrap_or_default();
            warmup_cpis += completed - sample.len() as u64;
            all.extend_from_slice(&sample);
            streams.push(StreamStats {
                stream,
                cpis: completed,
                detections: collected.detections.get(&stream).copied().unwrap_or(0),
                latency: LatencyProfile::from_seconds(&mut sample),
            });
        }
        streams.sort_by_key(|s| s.stream);
        let aggregate = LatencyProfile::from_seconds(&mut all);
        Ok(ServeSummary {
            streams,
            cpis: resident.cpis,
            slots: resident.slots,
            elapsed,
            cpis_per_sec: if elapsed > 0.0 {
                resident.cpis as f64 / elapsed
            } else {
                0.0
            },
            rejected,
            purged,
            aggregate,
            warmup_cpis,
            rebalances,
            stream_health,
            quarantines,
            recoveries: recoveries.len() as u64,
            recovery_log: recoveries,
            lost_cpis,
            checkpoints,
            resident,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stap_core::params::StapParams;
    use stap_pipeline::NodeAssignment;
    use stap_radar::Scenario;

    fn submit_stream(server: &StapServer, cubes: &[stap_cube::CCube]) {
        server.register(0);
        for c in cubes {
            server.wait_ready(0);
            let cube = server.take_cube_from(c);
            server.submit(0, cube).expect("admission");
        }
    }

    /// Warm-up completions are excluded from the percentiles but still
    /// counted, and the split is reported.
    #[test]
    fn warmup_completions_are_reported_separately() {
        let params = StapParams::reduced();
        let sc = Scenario::reduced(3);
        let cubes: Vec<_> = sc.stream(6).map(|(_, _, c)| c).collect();
        let res = ResidentStap::for_scenario(params, NodeAssignment::tiny(), &sc);
        let server = StapServer::start(
            res,
            ServerConfig {
                max_group: 1,
                warmup_cpis: 2,
                ..ServerConfig::default()
            },
        );
        submit_stream(&server, &cubes);
        let s = server.shutdown().unwrap();
        assert_eq!(s.cpis, 6);
        assert_eq!(s.warmup_cpis, 2);
        assert_eq!(s.rebalances, 0);
        assert_eq!(s.streams[0].cpis, 6, "per-stream count includes warm-up");
        assert!(s.aggregate.p50_ms > 0.0);
        assert!(s.aggregate.p99_ms >= s.aggregate.p50_ms);
    }

    /// An elastic server survives a degradation event mid-session: the
    /// engine shifts a rank toward the degraded task and every CPI
    /// still completes.
    #[test]
    fn elastic_server_rebalances_on_degradation() {
        let params = StapParams::reduced();
        let sc = Scenario::reduced(9);
        let cubes: Vec<_> = sc.stream(10).map(|(_, _, c)| c).collect();
        let res = ResidentStap::for_scenario(params, NodeAssignment::tiny(), &sc);
        let server = StapServer::start(
            res,
            ServerConfig {
                max_group: 1,
                window: 2,
                elastic: true,
                policy: stap_pipeline::RuntimePolicy {
                    rebalance: true,
                    rebalance_cooldown: 1,
                    ..stap_pipeline::RuntimePolicy::default()
                },
                ..ServerConfig::default()
            },
        );
        server.register(0);
        for (scpi, c) in cubes.iter().enumerate() {
            if scpi == 5 {
                server.degrade(stap_pipeline::assignment::EASY_WT);
            }
            server.wait_ready(0);
            let cube = server.take_cube_from(c);
            server.submit(0, cube).expect("admission");
        }
        let s = server.shutdown().unwrap();
        assert_eq!(s.cpis, 10);
        assert_eq!(s.rebalances, 1, "degradation must force one rank shift");
        assert!(s.resident.busy.iter().sum::<f64>() > 0.0);
    }
}
