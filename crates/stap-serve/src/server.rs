//! The long-running ingestion server over the resident pipeline.
//!
//! Three background threads per server:
//!
//! * **batcher** — pulls admitted CPIs off the admission queue in
//!   arrival order, coalesces up to `max_group` of them (naturally
//!   mixing streams) into one slot group and pushes it down a *bounded*
//!   slot channel. The bound is the credit supply: when `window` slots
//!   are in flight the batcher blocks, admitted CPIs pile up against
//!   each stream's queue depth, and further submissions bounce with
//!   [`Reject::QueueFull`] — backpressure propagates to producers
//!   instead of growing queues without bound;
//! * **engine** — [`stap_pipeline::ResidentStap::serve`] on the slot
//!   channel: the seven resident task nodes plus driver;
//! * **collector** — drains per-CPI completions, records per-stream
//!   latency samples and releases admission credits.
//!
//! Submission is allocation-free in steady state: producers draw cubes
//! from the server's shared pool ([`StapServer::take_cube`]) and the
//! pipeline recycles every block it consumes.

use crate::admission::{AdmissionConfig, Ingest, Pending, Reject};
use crate::slo::LatencyProfile;
use stap_cube::CCube;
use stap_math::Cx;
use stap_pipeline::runner::PipelineError;
use stap_pipeline::{CpiJob, ResidentStap, ResidentSummary};
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Server limits and batching knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Pipeline slots in flight (the slot channel bound / credit supply).
    pub window: usize,
    /// Maximum CPIs coalesced into one slot.
    pub max_group: usize,
    /// Per-stream admission bound (see [`AdmissionConfig`]).
    pub queue_depth: usize,
    /// Soft mailbox high-water mark inside the pipeline (0 = off).
    pub mailbox_high_water: usize,
    /// Expected concurrent streams; sizes the pool pre-warm
    /// ([`ResidentStap::reserve`]). More streams than the hint still
    /// work — the pool grows on (counted) misses.
    pub streams_hint: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            window: 4,
            max_group: 4,
            queue_depth: 8,
            mailbox_high_water: 64,
            streams_hint: 4,
        }
    }
}

/// Per-stream completion statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamStats {
    /// Stream id.
    pub stream: u16,
    /// CPIs completed.
    pub cpis: u64,
    /// Total detections reported.
    pub detections: u64,
    /// Latency percentiles over this stream's completions.
    pub latency: LatencyProfile,
}

/// Everything a serve session reports at shutdown.
#[derive(Clone, Debug, Default)]
pub struct ServeSummary {
    /// Per-stream stats, sorted by stream id.
    pub streams: Vec<StreamStats>,
    /// CPIs completed across all streams.
    pub cpis: u64,
    /// Pipeline slots processed (`cpis / slots` = achieved batching).
    pub slots: u64,
    /// Wall-clock seconds from server start to engine shutdown.
    pub elapsed: f64,
    /// Aggregate sustained throughput.
    pub cpis_per_sec: f64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// CPIs purged by stream disconnects.
    pub purged: u64,
    /// Latency percentiles over all completions.
    pub aggregate: LatencyProfile,
    /// The resident pipeline's own summary (health, pool traffic).
    pub resident: ResidentSummary,
}

impl ServeSummary {
    /// JSON rendering for `stapctl serve`/`loadgen` and the CI smoke
    /// stage (which asserts the SLO fields exist and the pools stayed
    /// miss-free in steady state).
    pub fn to_json(&self) -> stap_util::Json {
        use stap_util::Json;
        let profile = |p: &LatencyProfile| {
            Json::obj([
                ("p50_ms", Json::Num(p.p50_ms)),
                ("p99_ms", Json::Num(p.p99_ms)),
                ("max_ms", Json::Num(p.max_ms)),
            ])
        };
        Json::obj([
            ("cpis", Json::Num(self.cpis as f64)),
            ("slots", Json::Num(self.slots as f64)),
            ("elapsed_s", Json::Num(self.elapsed)),
            ("cpis_per_sec", Json::Num(self.cpis_per_sec)),
            ("rejected", Json::Num(self.rejected as f64)),
            ("purged", Json::Num(self.purged as f64)),
            ("latency", profile(&self.aggregate)),
            (
                "streams",
                Json::arr(self.streams.iter().map(|s| {
                    Json::obj([
                        ("stream", Json::Num(s.stream as f64)),
                        ("cpis", Json::Num(s.cpis as f64)),
                        ("detections", Json::Num(s.detections as f64)),
                        ("latency", profile(&s.latency)),
                    ])
                })),
            ),
            (
                "pool",
                Json::obj([
                    ("cx_hits", Json::Num(self.resident.pool_cx.hits as f64)),
                    ("cx_misses", Json::Num(self.resident.pool_cx.misses as f64)),
                    ("real_hits", Json::Num(self.resident.pool_real.hits as f64)),
                    (
                        "real_misses",
                        Json::Num(self.resident.pool_real.misses as f64),
                    ),
                ]),
            ),
            (
                "health",
                Json::obj([
                    ("faults", Json::Bool(self.resident.health.any())),
                    (
                        "mailbox_over_high_water",
                        Json::Num(self.resident.health.mailbox_over_high_water as f64),
                    ),
                    (
                        "max_mailbox_depth",
                        Json::Num(
                            self.resident
                                .health
                                .max_mailbox_depth
                                .iter()
                                .copied()
                                .max()
                                .unwrap_or(0) as f64,
                        ),
                    ),
                ]),
            ),
        ])
    }
}

struct Collected {
    latencies: HashMap<u16, Vec<f64>>,
    detections: HashMap<u16, u64>,
}

struct Shared {
    ing: Mutex<Ingest>,
    cv: Condvar,
}

/// A running multi-stream STAP server. Construct with
/// [`StapServer::start`], feed it with [`StapServer::submit`], stop it
/// with [`StapServer::shutdown`].
pub struct StapServer {
    shared: Arc<Shared>,
    pool: stap_cube::SharedBufferPool<Cx>,
    shape: [usize; 3],
    t0: Instant,
    batcher: Option<JoinHandle<()>>,
    engine: Option<JoinHandle<Result<ResidentSummary, PipelineError>>>,
    collector: Option<JoinHandle<Collected>>,
}

impl StapServer {
    /// Builds the resident pipeline, pre-warms its pools for
    /// `cfg.streams_hint` streams and starts the background threads.
    pub fn start(resident: ResidentStap, cfg: ServerConfig) -> StapServer {
        StapServer::start_with_tap(resident, cfg, None)
    }

    /// Like [`StapServer::start`], but every completion is also
    /// forwarded (detections and all) to `tap` — the hook consumers use
    /// to receive results; a dropped tap is ignored.
    pub fn start_with_tap(
        resident: ResidentStap,
        cfg: ServerConfig,
        tap: Option<mpsc::Sender<stap_pipeline::CpiDone>>,
    ) -> StapServer {
        let resident = resident
            .with_window(cfg.window)
            .with_max_group(cfg.max_group)
            .with_mailbox_high_water(cfg.mailbox_high_water);
        resident.reserve(cfg.streams_hint, cfg.queue_depth);
        let p = &resident.params;
        let shape = [p.k_range, p.j_channels, p.n_pulses];
        let pool = resident.pools().cx.clone();
        let shared = Arc::new(Shared {
            ing: Mutex::new(Ingest::new(AdmissionConfig {
                queue_depth: cfg.queue_depth,
                shape,
            })),
            cv: Condvar::new(),
        });

        // Credit-based backpressure: the slot channel holds at most
        // `window` undelivered groups; a full channel blocks the batcher.
        let (jobs_tx, jobs_rx) = mpsc::sync_channel::<Vec<CpiJob>>(cfg.window);
        let (done_tx, done_rx) = mpsc::channel();

        let max_group = cfg.max_group.max(1);
        let sh = shared.clone();
        let batcher = std::thread::spawn(move || {
            let mut batch: Vec<Pending> = Vec::with_capacity(max_group);
            loop {
                batch.clear();
                {
                    let mut ing = sh.ing.lock().unwrap();
                    loop {
                        ing.next_group_into(max_group, &mut batch);
                        if !batch.is_empty() {
                            break;
                        }
                        if !ing.open {
                            return; // drops jobs_tx -> engine drains and exits
                        }
                        ing = sh.cv.wait(ing).unwrap();
                    }
                }
                let jobs: Vec<CpiJob> = batch
                    .drain(..)
                    .map(|p| CpiJob {
                        stream: p.stream,
                        scpi: p.scpi,
                        cube: p.cube,
                        submitted: p.submitted,
                    })
                    .collect();
                if jobs_tx.send(jobs).is_err() {
                    return; // engine died; shutdown() will surface the error
                }
            }
        });

        let engine = std::thread::spawn(move || resident.serve(jobs_rx, done_tx));

        let sh = shared.clone();
        let collector = std::thread::spawn(move || {
            let mut out = Collected {
                latencies: HashMap::new(),
                detections: HashMap::new(),
            };
            while let Ok(d) = done_rx.recv() {
                out.latencies.entry(d.stream).or_default().push(d.latency);
                *out.detections.entry(d.stream).or_default() += d.detections.len() as u64;
                sh.ing.lock().unwrap().complete(d.stream);
                // Wake producers blocked in `wait_ready` (the batcher
                // also wakes, rechecks and goes back to sleep — cheap).
                sh.cv.notify_all();
                if let Some(t) = &tap {
                    let _ = t.send(d);
                }
            }
            out
        });

        StapServer {
            shared,
            pool,
            shape,
            t0: Instant::now(),
            batcher: Some(batcher),
            engine: Some(engine),
            collector: Some(collector),
        }
    }

    /// The cube shape this server accepts (`[K, J, N]`).
    pub fn shape(&self) -> [usize; 3] {
        self.shape
    }

    /// Draws a correctly-shaped cube from the server's pool, filled by
    /// `f(k, j, n)`. Submitting pool cubes keeps the steady state
    /// allocation-free end to end.
    pub fn take_cube(&self, f: impl FnMut(usize, usize, usize) -> Cx) -> CCube {
        self.pool.take_cube(self.shape, f)
    }

    /// Draws a pool cube pre-filled from `src` in one slice copy — the
    /// fast path for producers that already hold a CPI cube (A/D
    /// buffers, replayed captures) and only need it in pool-recycled
    /// memory for submission.
    pub fn take_cube_from(&self, src: &CCube) -> CCube {
        self.pool.take_cube_from(src)
    }

    /// Registers a stream id (idempotent while connected).
    pub fn register(&self, stream: u16) {
        self.shared.ing.lock().unwrap().register(stream);
    }

    /// Cheap admission probe: true when a [`StapServer::submit`] for
    /// `stream` would be admitted right now. Producers use this to
    /// avoid filling a cube they are about to have bounced (with one
    /// producer per stream, a `true` answer only gets *more* true until
    /// that producer submits).
    pub fn ready_for(&self, stream: u16) -> bool {
        self.shared.ing.lock().unwrap().ready_for(stream)
    }

    /// Blocks until `stream` has admission headroom (a completion freed
    /// a unit of its queue depth) or the server stops accepting. Returns
    /// the number of times the producer had to wait — the backpressure
    /// event count. The stream must be registered: waiting on an
    /// unregistered stream only ends at shutdown.
    pub fn wait_ready(&self, stream: u16) -> u64 {
        let mut waits = 0;
        let mut ing = self.shared.ing.lock().unwrap();
        while ing.open && !ing.ready_for(stream) {
            waits += 1;
            ing = self.shared.cv.wait(ing).unwrap();
        }
        waits
    }

    /// Submits one CPI for `stream`. Returns the assigned per-stream
    /// sequence number, or the rejection reason (admission is
    /// non-blocking: on [`Reject::QueueFull`] the producer decides
    /// whether to retry, shed or fail over).
    pub fn submit(&self, stream: u16, cube: CCube) -> Result<u32, Reject> {
        let now = Instant::now();
        let r = self.shared.ing.lock().unwrap().submit(stream, cube, now);
        match r {
            Ok(scpi) => {
                self.shared.cv.notify_one();
                Ok(scpi)
            }
            Err((reject, cube)) => {
                // Rejected cubes go back to the pool, not the allocator.
                self.pool.recycle(cube);
                Err(reject)
            }
        }
    }

    /// Disconnects a stream: deregisters it and purges its
    /// not-yet-dispatched CPIs (in-pipeline CPIs still complete).
    /// Returns the number purged.
    pub fn disconnect(&self, stream: u16) -> usize {
        let cubes = self.shared.ing.lock().unwrap().disconnect(stream);
        let n = cubes.len();
        for c in cubes {
            self.pool.recycle(c);
        }
        n
    }

    /// Stops admission, drains everything in flight and returns the
    /// session summary.
    pub fn shutdown(mut self) -> Result<ServeSummary, PipelineError> {
        {
            let mut ing = self.shared.ing.lock().unwrap();
            ing.open = false;
        }
        self.shared.cv.notify_all();
        self.batcher
            .take()
            .unwrap()
            .join()
            .expect("batcher panicked");
        let resident = self
            .engine
            .take()
            .unwrap()
            .join()
            .expect("engine panicked")?;
        let collected = self
            .collector
            .take()
            .unwrap()
            .join()
            .expect("collector panicked");
        let elapsed = self.t0.elapsed().as_secs_f64();

        let (rejected, purged) = {
            let ing = self.shared.ing.lock().unwrap();
            (ing.rejected, ing.purged)
        };
        let mut streams: Vec<StreamStats> = Vec::new();
        let mut all: Vec<f64> = Vec::new();
        for (&stream, lats) in &collected.latencies {
            let mut sample = lats.clone();
            all.extend_from_slice(&sample);
            streams.push(StreamStats {
                stream,
                cpis: sample.len() as u64,
                detections: collected.detections.get(&stream).copied().unwrap_or(0),
                latency: LatencyProfile::from_seconds(&mut sample),
            });
        }
        streams.sort_by_key(|s| s.stream);
        let aggregate = LatencyProfile::from_seconds(&mut all);
        Ok(ServeSummary {
            streams,
            cpis: resident.cpis,
            slots: resident.slots,
            elapsed,
            cpis_per_sec: if elapsed > 0.0 {
                resident.cpis as f64 / elapsed
            } else {
                0.0
            },
            rejected,
            purged,
            aggregate,
            resident,
        })
    }
}
