//! Synthetic multi-stream load generation.
//!
//! One producer thread per simulated stream, each submitting its
//! pre-generated seeded [`Scenario`] CPI sequence as fast as admission
//! allows. Queue-depth backpressure is the pacing signal: producers
//! block in [`StapServer::wait_ready`] until a completion frees
//! headroom, so the server runs at its sustained rate with bounded
//! queues rather than unbounded buffering.

use crate::admission::Reject;
use crate::server::{ServeSummary, StapServer};
use stap_cube::CCube;
use stap_pipeline::runner::PipelineError;
use stap_radar::Scenario;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Load shape.
#[derive(Clone, Copy, Debug)]
pub struct LoadgenConfig {
    /// Concurrent simulated streams.
    pub streams: usize,
    /// CPIs each stream submits.
    pub cpis_per_stream: usize,
    /// Base RNG seed; stream `s` uses `seed + s`.
    pub seed: u64,
    /// Scenario factory: stream `s` replays `scenario(seed + s)`. Must
    /// produce cubes matching the server's pipeline geometry.
    pub scenario: fn(u64) -> Scenario,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            streams: 4,
            cpis_per_stream: 8,
            seed: 42,
            scenario: Scenario::reduced,
        }
    }
}

/// What the load run produced.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// The server's session summary.
    pub summary: ServeSummary,
    /// Backpressure events: times a producer blocked in
    /// [`StapServer::wait_ready`] for admission headroom.
    pub backpressure_retries: u64,
}

/// Pre-generates every stream's CPI sequence, *then* builds the server
/// via `mk_server` and drives `cfg.streams` producer threads against
/// it. Building the server after generation keeps simulator time off
/// the server's clock, so the reported rate is the pipeline's.
pub fn run_loadgen(
    mk_server: impl FnOnce() -> StapServer,
    cfg: LoadgenConfig,
) -> Result<LoadgenReport, PipelineError> {
    let loads: Vec<Vec<CCube>> = (0..cfg.streams)
        .map(|s| {
            (cfg.scenario)(cfg.seed + s as u64)
                .stream(cfg.cpis_per_stream)
                .map(|(_, _, c)| c)
                .collect()
        })
        .collect();
    let server = Arc::new(mk_server());
    let retries = Arc::new(AtomicU64::new(0));
    let mut producers = Vec::new();
    for (s, cubes) in loads.into_iter().enumerate() {
        let stream = s as u16;
        server.register(stream);
        let srv = server.clone();
        let rt = retries.clone();
        producers.push(std::thread::spawn(move || {
            for c in &cubes {
                // Wait before filling: a bounced submit wastes a full
                // cube copy, so block until admission has headroom.
                let waits = srv.wait_ready(stream);
                if waits > 0 {
                    rt.fetch_add(waits, Ordering::Relaxed);
                }
                let cube = srv.take_cube_from(c);
                match srv.submit(stream, cube) {
                    Ok(_) => {}
                    Err(Reject::QueueFull { .. }) => {
                        unreachable!("single producer per stream: wait cannot go stale")
                    }
                    Err(e) => panic!("loadgen stream {stream}: {e}"),
                }
            }
        }));
    }
    for p in producers {
        p.join().expect("producer panicked");
    }
    let server = Arc::into_inner(server).expect("producers released the server");
    let summary = server.shutdown()?;
    Ok(LoadgenReport {
        summary,
        backpressure_retries: retries.load(Ordering::Relaxed),
    })
}
