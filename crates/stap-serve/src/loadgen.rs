//! Synthetic multi-stream load generation.
//!
//! One producer thread per simulated stream, each submitting its
//! pre-generated seeded [`Scenario`] CPI sequence as fast as admission
//! allows. Queue-depth backpressure is the pacing signal: producers
//! block in [`StapServer::wait_ready`] until a completion frees
//! headroom, so the server runs at its sustained rate with bounded
//! queues rather than unbounded buffering.

use crate::admission::Reject;
use crate::health::RejectCounts;
use crate::server::{ServeSummary, StapServer};
use stap_cube::CCube;
use stap_pipeline::runner::PipelineError;
use stap_radar::Scenario;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Load shape.
#[derive(Clone, Copy, Debug)]
pub struct LoadgenConfig {
    /// Concurrent simulated streams.
    pub streams: usize,
    /// CPIs each stream submits.
    pub cpis_per_stream: usize,
    /// Base RNG seed; stream `s` uses `seed + s`.
    pub seed: u64,
    /// Scenario factory: stream `s` replays `scenario(seed + s)`. Must
    /// produce cubes matching the server's pipeline geometry.
    pub scenario: fn(u64) -> Scenario,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            streams: 4,
            cpis_per_stream: 8,
            seed: 42,
            scenario: Scenario::reduced,
        }
    }
}

/// What the load run produced.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// The server's session summary.
    pub summary: ServeSummary,
    /// Backpressure events: times a producer blocked in
    /// [`StapServer::wait_ready`] for admission headroom.
    pub backpressure_retries: u64,
    /// Producer-side reject tallies by reason, per stream (sorted by
    /// stream id). Empty on a clean run — the happy-path smoke asserts
    /// exactly that.
    pub rejects: Vec<(u16, RejectCounts)>,
    /// Total rejects across every stream and reason.
    pub rejected_total: u64,
    /// CPIs a producer gave up on after a terminal reject (bad shape,
    /// retired id) or exhausted retries.
    pub abandoned_cpis: u64,
}

/// Pre-generates every stream's CPI sequence, *then* builds the server
/// via `mk_server` and drives `cfg.streams` producer threads against
/// it. Building the server after generation keeps simulator time off
/// the server's clock, so the reported rate is the pipeline's.
pub fn run_loadgen(
    mk_server: impl FnOnce() -> StapServer,
    cfg: LoadgenConfig,
) -> Result<LoadgenReport, PipelineError> {
    let loads: Vec<Vec<CCube>> = (0..cfg.streams)
        .map(|s| {
            (cfg.scenario)(cfg.seed + s as u64)
                .stream(cfg.cpis_per_stream)
                .map(|(_, _, c)| c)
                .collect()
        })
        .collect();
    let server = Arc::new(mk_server());
    let retries = Arc::new(AtomicU64::new(0));
    let abandoned = Arc::new(AtomicU64::new(0));
    let rejects = Arc::new(Mutex::new(HashMap::<u16, RejectCounts>::new()));
    let mut producers = Vec::new();
    for (s, cubes) in loads.into_iter().enumerate() {
        let stream = s as u16;
        server.register(stream);
        let srv = server.clone();
        let rt = retries.clone();
        let ab = abandoned.clone();
        let rj = rejects.clone();
        producers.push(std::thread::spawn(move || {
            let mut local = RejectCounts::default();
            'cpis: for c in &cubes {
                // Bounded retry per CPI: transient rejects (queue
                // pressure, a closing quarantine window) are retried,
                // terminal ones abandon just this CPI — a reject must
                // never kill the producer, that is the failure mode the
                // tally exists to observe.
                let mut attempts = 0u32;
                loop {
                    // Wait before filling: a bounced submit wastes a
                    // full cube copy, so block until admission has
                    // headroom.
                    let waits = srv.wait_ready(stream);
                    if waits > 0 {
                        rt.fetch_add(waits, Ordering::Relaxed);
                    }
                    let cube = srv.take_cube_from(c);
                    match srv.submit(stream, cube) {
                        Ok(_) => continue 'cpis,
                        Err(r) => {
                            local.bump(&r);
                            attempts += 1;
                            match r {
                                Reject::Closed => break 'cpis,
                                Reject::Quarantined { retry_ms, .. } if attempts < 8 => {
                                    std::thread::sleep(Duration::from_millis(
                                        retry_ms.clamp(1, 50),
                                    ));
                                }
                                Reject::QueueFull { .. } if attempts < 8 => {}
                                _ => {
                                    ab.fetch_add(1, Ordering::Relaxed);
                                    continue 'cpis;
                                }
                            }
                        }
                    }
                }
            }
            if local.total() > 0 {
                *rj.lock().unwrap().entry(stream).or_default() = local;
            }
        }));
    }
    for p in producers {
        p.join().expect("producer panicked");
    }
    let server = Arc::into_inner(server).expect("producers released the server");
    let summary = server.shutdown()?;
    let mut rejects: Vec<(u16, RejectCounts)> = Arc::into_inner(rejects)
        .unwrap()
        .into_inner()
        .unwrap()
        .into_iter()
        .collect();
    rejects.sort_by_key(|(s, _)| *s);
    let rejected_total = rejects.iter().map(|(_, c)| c.total()).sum();
    Ok(LoadgenReport {
        summary,
        backpressure_retries: retries.load(Ordering::Relaxed),
        rejects,
        rejected_total,
        abandoned_cpis: abandoned.load(Ordering::Relaxed),
    })
}
