//! Checkpoint/restore supervision for the serve engine.
//!
//! A resident world is one process-wide failure domain: a panic on any
//! rank poisons the world and [`ResidentStap::serve_with_state`]
//! returns an error — without supervision the whole serve session dies
//! and every stream's recursive state (training histories, QR
//! recursions, weight FIFOs) is gone. The supervisor turns that into a
//! bounded blip:
//!
//! * jobs flow from the server's batcher through the supervisor, which
//!   **retains a pool-backed copy of every dispatched slot group** until
//!   the next checkpoint;
//! * every [`SupervisorConfig::checkpoint_every`] slots the supervisor
//!   closes the engine's job channel, lets it drain, and banks the
//!   exported [`ResidentState`] as the new checkpoint (retained copies
//!   are recycled — nothing before a checkpoint can need replay);
//! * on engine failure it rebuilds a fresh world from the banked state
//!   and **replays the retained trajectory in order**, so the weight
//!   FIFOs advance through exactly the same sequence and detections
//!   stay bit-identical to an unfaulted run. Completions the failed
//!   world already delivered are deduplicated, not re-delivered;
//! * the only CPIs *lost* are replay subs whose stream disconnected in
//!   the meantime (their per-stream sequence retired with them); each is
//!   reported through [`SupervisorHooks::on_lost`] and counted in
//!   [`Recovered::lost_cpis`] — bounded by one checkpoint interval.
//!
//! The checkpoint cadence is the knob: shorter epochs bound replay work
//! and the lost-CPI exposure (`checkpoint_every * max_group`), longer
//! epochs amortize the drain barrier over more slots.

use stap_cube::CCube;
use stap_pipeline::runner::PipelineError;
use stap_pipeline::{CpiDone, CpiJob, ResidentStap, ResidentState, ResidentSummary};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// Supervision knobs.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Slots per checkpoint epoch: the engine drains and exports its
    /// cross-slot state every this-many dispatched slot groups. Also
    /// the replay/lost-CPI exposure bound (in slots).
    pub checkpoint_every: u64,
    /// Recoveries before the supervisor gives up and surfaces the
    /// engine error (a world that keeps dying is not a blip).
    pub max_recoveries: u32,
    /// Deterministic fault plans, indexed by world launch: launch 0
    /// (the first epoch) runs under `plans[0]`, the world launched for
    /// epoch N under `plans[N]`. Launches past the end run fault-free.
    /// Epoch counters inside a plan are slot indices *local to that
    /// launch*. The chaos harness uses this to schedule a panic in
    /// launch 0 and let the recovery world run clean.
    pub plans: Vec<stap_mp::FaultPlan>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            checkpoint_every: 8,
            max_recoveries: 2,
            plans: Vec::new(),
        }
    }
}

/// One recovery event.
#[derive(Clone, Debug)]
pub struct Recovered {
    /// Which world launch failed (0 = the first).
    pub epoch: u32,
    /// Global slot-dispatch count when the failure was detected.
    pub at_slot: u64,
    /// Sub-CPIs that could not be replayed (their stream disconnected
    /// between dispatch and recovery). Bounded by
    /// `checkpoint_every * max_group`.
    pub lost_cpis: u64,
    /// The engine error that triggered recovery.
    pub error: String,
}

/// Callbacks wiring the supervisor to the admission layer without a
/// dependency cycle.
pub struct SupervisorHooks {
    /// True when the stream's id is retired (disconnected): its replay
    /// subs are dropped as lost instead of re-submitted, because a
    /// retired stream's sequence must not advance.
    pub is_retired: Box<dyn Fn(u16) -> bool + Send>,
    /// Invoked once per lost sub-CPI with the owning stream, so the
    /// health ledger can count it.
    pub on_lost: Box<dyn Fn(u16) + Send>,
}

impl Default for SupervisorHooks {
    fn default() -> Self {
        SupervisorHooks {
            is_retired: Box::new(|_| false),
            on_lost: Box::new(|_| {}),
        }
    }
}

/// What a supervised session reports at shutdown.
#[derive(Debug, Default)]
pub struct SupervisorOutcome {
    /// Merged pipeline summary over every launch. `cpis`/`slots` are
    /// the supervisor's *unique* counts (replayed work is not double
    /// counted).
    pub resident: ResidentSummary,
    /// Every recovery, in order.
    pub recoveries: Vec<Recovered>,
    /// Checkpoints banked (final drain included).
    pub checkpoints: u64,
    /// Total sub-CPIs lost across all recoveries.
    pub lost_cpis: u64,
}

/// One dispatched slot group, retained until the next checkpoint so it
/// can be replayed into a rebuilt world.
struct RetainedGroup {
    /// `(stream, scpi, submitted)` per sub-CPI, in slot order.
    subs: Vec<(u16, u32, Instant)>,
    cubes: Vec<CCube>,
}

impl RetainedGroup {
    /// Pool-backed copy of a group about to be dispatched.
    fn copy_of(jobs: &[CpiJob], pool: &stap_cube::SharedBufferPool<stap_math::Cx>) -> Self {
        RetainedGroup {
            subs: jobs
                .iter()
                .map(|j| (j.stream, j.scpi, j.submitted))
                .collect(),
            cubes: jobs.iter().map(|j| pool.take_cube_from(&j.cube)).collect(),
        }
    }

    /// Takes ownership of an undispatched group (the engine died before
    /// accepting it) — no copy needed, the originals become the
    /// retained trajectory.
    fn from_jobs(jobs: Vec<CpiJob>) -> Self {
        let mut subs = Vec::with_capacity(jobs.len());
        let mut cubes = Vec::with_capacity(jobs.len());
        for j in jobs {
            subs.push((j.stream, j.scpi, j.submitted));
            cubes.push(j.cube);
        }
        RetainedGroup { subs, cubes }
    }

    fn recycle_into(self, pool: &stap_cube::SharedBufferPool<stap_math::Cx>) {
        for c in self.cubes {
            pool.recycle(c);
        }
    }
}

/// Runs `resident` under checkpoint/restore supervision, pumping slot
/// groups from `jobs` and unique completions into `done`. Returns the
/// merged outcome, or the engine error once `max_recoveries` is
/// exhausted.
pub fn run_supervised(
    mut resident: ResidentStap,
    cfg: SupervisorConfig,
    jobs: mpsc::Receiver<Vec<CpiJob>>,
    done: mpsc::Sender<CpiDone>,
    hooks: SupervisorHooks,
) -> Result<SupervisorOutcome, PipelineError> {
    let pool = resident.pools().cx.clone();
    let window = resident.window.max(1);
    let checkpoint_every = cfg.checkpoint_every.max(1);

    let mut carry = ResidentState::default();
    let mut pending: Vec<RetainedGroup> = Vec::new();
    let mut outcome = SupervisorOutcome::default();
    let mut outer_open = true;
    let mut total_slots: u64 = 0;
    let mut launch: u32 = 0;
    let mut recoveries: u32 = 0;

    // Completions the failed world delivered before dying must not be
    // re-delivered by the replay; the pump filters on (stream, scpi).
    // Cleared at each checkpoint (nothing retired can be replayed).
    let delivered: Mutex<HashSet<(u16, u32)>> = Mutex::new(HashSet::new());
    let engine_dead = AtomicBool::new(false);
    // Unique completions, for the merged summary's `cpis`.
    let unique = std::sync::atomic::AtomicU64::new(0);

    while outer_open || !pending.is_empty() {
        // Strip retired streams out of the replay trajectory. Grouping
        // invariance (property-proven for `serve_with_state`) makes
        // dropping one stream's subs safe for every other stream's
        // bit-identity; the dropped subs are the recovery's loss.
        let mut lost_now: u64 = 0;
        for g in &mut pending {
            let mut i = 0;
            while i < g.subs.len() {
                if (hooks.is_retired)(g.subs[i].0) {
                    (hooks.on_lost)(g.subs[i].0);
                    lost_now += 1;
                    g.subs.remove(i);
                    pool.recycle(g.cubes.remove(i));
                } else {
                    i += 1;
                }
            }
        }
        pending.retain(|g| !g.subs.is_empty());
        if let Some(r) = outcome.recoveries.last_mut() {
            r.lost_cpis += lost_now;
        }
        outcome.lost_cpis += lost_now;

        resident.faults = cfg.plans.get(launch as usize).cloned();
        engine_dead.store(false, Ordering::SeqCst);
        let (ep_jobs_tx, ep_jobs_rx) = mpsc::sync_channel::<Vec<CpiJob>>(window);
        let (ep_done_tx, ep_done_rx) = mpsc::channel::<CpiDone>();
        let carry_in = carry.clone();

        let epoch_result: std::thread::Result<
            Result<(ResidentSummary, ResidentState), PipelineError>,
        > = std::thread::scope(|s| {
            let res = &resident;
            let eng = s.spawn(move || res.serve_with_state(ep_jobs_rx, ep_done_tx, carry_in));
            let out_done = done.clone();
            let delivered = &delivered;
            let engine_dead = &engine_dead;
            let unique = &unique;
            let pump = s.spawn(move || {
                while let Ok(d) = ep_done_rx.recv() {
                    let fresh = delivered.lock().unwrap().insert((d.stream, d.scpi));
                    if fresh {
                        unique.fetch_add(1, Ordering::Relaxed);
                        let _ = out_done.send(d);
                    }
                }
                engine_dead.store(true, Ordering::SeqCst);
            });

            let mut sent: u64 = 0;
            let mut failed = false;

            // Replay the retained trajectory, oldest first, feeding the
            // rebuilt world *copies* so a second crash can replay again.
            for g in &pending {
                let group: Vec<CpiJob> = g
                    .subs
                    .iter()
                    .zip(&g.cubes)
                    .map(|(&(stream, scpi, submitted), cube)| CpiJob {
                        stream,
                        scpi,
                        cube: pool.take_cube_from(cube),
                        submitted,
                    })
                    .collect();
                match ep_jobs_tx.send(group) {
                    Ok(()) => sent += 1,
                    Err(mpsc::SendError(group)) => {
                        for j in group {
                            pool.recycle(j.cube);
                        }
                        failed = true;
                        break;
                    }
                }
            }

            // Fresh slots until the checkpoint boundary.
            while !failed && sent < checkpoint_every && outer_open {
                match jobs.recv_timeout(Duration::from_millis(25)) {
                    Ok(group) => {
                        if group.is_empty() {
                            continue;
                        }
                        let retained = RetainedGroup::copy_of(&group, &pool);
                        match ep_jobs_tx.send(group) {
                            Ok(()) => {
                                pending.push(retained);
                                sent += 1;
                                total_slots += 1;
                            }
                            Err(mpsc::SendError(group)) => {
                                retained.recycle_into(&pool);
                                pending.push(RetainedGroup::from_jobs(group));
                                total_slots += 1;
                                failed = true;
                            }
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if engine_dead.load(Ordering::SeqCst) {
                            failed = true;
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => outer_open = false,
                }
            }

            // Checkpoint barrier (or failure): close the job channel so
            // the engine drains and exports state, then collect it.
            drop(ep_jobs_tx);
            let res = eng.join();
            let _ = pump.join();
            res
        });

        let err: PipelineError = match epoch_result {
            Ok(Ok((summary, state))) => {
                // Banked checkpoint: everything dispatched this epoch
                // completed and its effects live in `state`.
                outcome.resident.elapsed += summary.elapsed;
                outcome.resident.health.merge(&summary.health);
                for t in 0..7 {
                    outcome.resident.busy[t] += summary.busy[t];
                }
                outcome.resident.pool_cx = summary.pool_cx;
                outcome.resident.pool_real = summary.pool_real;
                outcome.resident.slots += pending.len() as u64;
                carry = state;
                for g in pending.drain(..) {
                    g.recycle_into(&pool);
                }
                delivered.lock().unwrap().clear();
                outcome.checkpoints += 1;
                launch += 1;
                continue;
            }
            Ok(Err(e)) => e,
            Err(panic) => PipelineError::World(stap_mp::WorldError {
                rank: usize::MAX,
                message: format!(
                    "supervised engine thread panicked outside the world: {}",
                    panic_message(&panic)
                ),
            }),
        };

        // Engine failure: give up past the recovery budget, else record
        // the event and loop — the next epoch rebuilds from `carry` and
        // replays `pending`.
        if recoveries >= cfg.max_recoveries {
            return Err(err);
        }
        recoveries += 1;
        outcome.recoveries.push(Recovered {
            epoch: launch,
            at_slot: total_slots,
            lost_cpis: 0,
            error: err.to_string(),
        });
        launch += 1;
    }

    outcome.resident.cpis = unique.load(Ordering::SeqCst);
    Ok(outcome)
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}
