//! Latency service-objective math.

/// Nearest-rank percentile of an ascending-sorted slice, `q` in [0, 1].
/// Empty input yields 0 (a stream that completed nothing has no
/// latency profile, not a NaN one).
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// p50/p99/max summary of a latency sample, in milliseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyProfile {
    /// Median latency (ms).
    pub p50_ms: f64,
    /// 99th percentile latency (ms).
    pub p99_ms: f64,
    /// Worst observed latency (ms).
    pub max_ms: f64,
}

impl LatencyProfile {
    /// Profiles a sample of latencies given in seconds. Sorts in place.
    pub fn from_seconds(sample: &mut [f64]) -> LatencyProfile {
        sample.sort_by(f64::total_cmp);
        LatencyProfile {
            p50_ms: percentile(sample, 0.50) * 1e3,
            p99_ms: percentile(sample, 0.99) * 1e3,
            max_ms: sample.last().copied().unwrap_or(0.0) * 1e3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[42.0], 0.99), 42.0);
    }

    #[test]
    fn profile_converts_to_ms() {
        let mut s = vec![0.002, 0.001, 0.010];
        let p = LatencyProfile::from_seconds(&mut s);
        assert_eq!(p.p50_ms, 2.0);
        assert_eq!(p.p99_ms, 10.0);
        assert_eq!(p.max_ms, 10.0);
    }
}
