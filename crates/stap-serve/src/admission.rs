//! Admission control: who may submit, how much, and in what order.
//!
//! Every stream must be registered before it can submit; submissions
//! are sequenced per stream (the resident pipeline's weight FIFOs
//! require contiguous `scpi` from 0) and bounded per stream: once a
//! stream has `queue_depth` CPIs admitted-but-incomplete, further
//! submissions are rejected with [`Reject::QueueFull`] rather than
//! buffered without bound. Disconnecting a stream purges its undispatched
//! CPIs so a mid-flight producer failure cannot wedge the batcher.

use stap_cube::CCube;
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// Why a submission was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reject {
    /// The stream has `queue_depth` CPIs in flight; shed load or wait.
    QueueFull {
        /// The offending stream.
        stream: u16,
        /// The configured per-stream bound that was hit.
        depth: usize,
    },
    /// The stream was never registered (or already disconnected).
    UnknownStream(u16),
    /// The cube's shape does not match the pipeline's `[K, J, N]`.
    BadShape {
        /// What the pipeline expects.
        expected: [usize; 3],
        /// What the caller submitted.
        got: [usize; 3],
    },
    /// The server is shutting down.
    Closed,
}

impl std::fmt::Display for Reject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reject::QueueFull { stream, depth } => {
                write!(f, "stream {stream}: queue full (depth {depth})")
            }
            Reject::UnknownStream(s) => write!(f, "stream {s}: not registered"),
            Reject::BadShape { expected, got } => {
                write!(f, "bad cube shape {got:?}, expected {expected:?}")
            }
            Reject::Closed => write!(f, "server closed"),
        }
    }
}

/// Admission limits.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Per-stream high-water mark: admitted-but-incomplete CPIs beyond
    /// which submissions bounce with [`Reject::QueueFull`].
    pub queue_depth: usize,
    /// Required cube shape `[k_range, j_channels, n_pulses]`.
    pub shape: [usize; 3],
}

/// One admitted CPI waiting for dispatch.
pub(crate) struct Pending {
    pub stream: u16,
    pub scpi: u32,
    pub cube: CCube,
    pub submitted: Instant,
}

struct StreamState {
    next_scpi: u32,
    /// Admitted and not yet completed (spans the ready queue, the slot
    /// channel and the pipeline itself).
    in_flight: usize,
}

/// The shared admission ledger (lives under the server's mutex).
pub(crate) struct Ingest {
    cfg: AdmissionConfig,
    streams: HashMap<u16, StreamState>,
    /// Admitted CPIs not yet handed to the slot batcher, in arrival
    /// order across streams.
    pub ready: VecDeque<Pending>,
    pub open: bool,
    pub rejected: u64,
    pub purged: u64,
}

impl Ingest {
    pub fn new(cfg: AdmissionConfig) -> Self {
        Ingest {
            cfg,
            streams: HashMap::new(),
            ready: VecDeque::new(),
            open: true,
            rejected: 0,
            purged: 0,
        }
    }

    /// Registers a stream id. Idempotent for an already-active stream.
    pub fn register(&mut self, stream: u16) {
        self.streams.entry(stream).or_insert(StreamState {
            next_scpi: 0,
            in_flight: 0,
        });
    }

    /// Admits one CPI, assigning its per-stream sequence number. On
    /// rejection the cube rides back with the reason so the caller can
    /// recycle it into the pool instead of dropping the buffer.
    pub fn submit(
        &mut self,
        stream: u16,
        cube: CCube,
        now: Instant,
    ) -> Result<u32, (Reject, CCube)> {
        if !self.open {
            self.rejected += 1;
            return Err((Reject::Closed, cube));
        }
        if cube.shape() != self.cfg.shape {
            self.rejected += 1;
            let got = cube.shape();
            return Err((
                Reject::BadShape {
                    expected: self.cfg.shape,
                    got,
                },
                cube,
            ));
        }
        let Some(st) = self.streams.get_mut(&stream) else {
            self.rejected += 1;
            return Err((Reject::UnknownStream(stream), cube));
        };
        if st.in_flight >= self.cfg.queue_depth {
            self.rejected += 1;
            return Err((
                Reject::QueueFull {
                    stream,
                    depth: self.cfg.queue_depth,
                },
                cube,
            ));
        }
        let scpi = st.next_scpi;
        st.next_scpi += 1;
        st.in_flight += 1;
        self.ready.push_back(Pending {
            stream,
            scpi,
            cube,
            submitted: now,
        });
        Ok(scpi)
    }

    /// Cheap admission probe: would a submission for `stream` be
    /// admitted right now? With one producer per stream (the sequencing
    /// contract), a `true` answer cannot be invalidated concurrently —
    /// other threads only *complete* CPIs, which frees depth.
    pub fn ready_for(&self, stream: u16) -> bool {
        self.open
            && self
                .streams
                .get(&stream)
                .is_some_and(|st| st.in_flight < self.cfg.queue_depth)
    }

    /// Removes a stream and purges its undispatched CPIs (CPIs already
    /// handed to the pipeline still complete). Returns cubes purged so
    /// the caller can recycle them into the pool outside the lock.
    pub fn disconnect(&mut self, stream: u16) -> Vec<CCube> {
        self.streams.remove(&stream);
        let mut dropped = Vec::new();
        self.ready.retain_mut(|p| {
            if p.stream == stream {
                dropped.push(std::mem::replace(&mut p.cube, CCube::zeros([0, 0, 0])));
                false
            } else {
                true
            }
        });
        self.purged += dropped.len() as u64;
        dropped
    }

    /// Takes up to `max` ready CPIs for one pipeline slot. The batcher
    /// takes in arrival order, so a slot naturally mixes streams.
    pub fn next_group_into(&mut self, max: usize, out: &mut Vec<Pending>) {
        while out.len() < max {
            match self.ready.pop_front() {
                Some(p) => out.push(p),
                None => break,
            }
        }
    }

    /// Marks one CPI complete (frees a unit of that stream's depth; the
    /// stream may already be disconnected, which is fine).
    pub fn complete(&mut self, stream: u16) {
        if let Some(st) = self.streams.get_mut(&stream) {
            st.in_flight = st.in_flight.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ingest(depth: usize) -> Ingest {
        Ingest::new(AdmissionConfig {
            queue_depth: depth,
            shape: [2, 2, 2],
        })
    }

    fn cube() -> CCube {
        CCube::zeros([2, 2, 2])
    }

    #[test]
    fn sequences_per_stream_and_bounds_depth() {
        let mut ing = ingest(2);
        ing.register(7);
        let t = Instant::now();
        assert_eq!(ing.submit(7, cube(), t).unwrap(), 0);
        assert_eq!(ing.submit(7, cube(), t).unwrap(), 1);
        assert_eq!(
            ing.submit(7, cube(), t).unwrap_err().0,
            Reject::QueueFull {
                stream: 7,
                depth: 2
            }
        );
        assert_eq!(ing.rejected, 1);
        ing.complete(7);
        assert_eq!(ing.submit(7, cube(), t).unwrap(), 2);
    }

    #[test]
    fn rejects_unknown_stream_and_bad_shape() {
        let mut ing = ingest(4);
        ing.register(1);
        let t = Instant::now();
        assert_eq!(
            ing.submit(2, cube(), t).unwrap_err().0,
            Reject::UnknownStream(2)
        );
        assert_eq!(
            ing.submit(1, CCube::zeros([1, 2, 2]), t).unwrap_err().0,
            Reject::BadShape {
                expected: [2, 2, 2],
                got: [1, 2, 2]
            }
        );
        ing.open = false;
        assert_eq!(ing.submit(1, cube(), t).unwrap_err().0, Reject::Closed);
        assert_eq!(ing.rejected, 3);
    }

    #[test]
    fn disconnect_purges_only_that_stream() {
        let mut ing = ingest(8);
        ing.register(1);
        ing.register(2);
        let t = Instant::now();
        for _ in 0..3 {
            ing.submit(1, cube(), t).unwrap();
            ing.submit(2, cube(), t).unwrap();
        }
        let purged = ing.disconnect(1);
        assert_eq!(purged.len(), 3);
        assert_eq!(ing.purged, 3);
        assert_eq!(ing.ready.len(), 3);
        assert!(ing.ready.iter().all(|p| p.stream == 2));
        // Re-registering starts a fresh sequence.
        ing.register(1);
        assert_eq!(ing.submit(1, cube(), t).unwrap(), 0);
    }

    #[test]
    fn batcher_mixes_streams_in_arrival_order() {
        let mut ing = ingest(8);
        ing.register(1);
        ing.register(2);
        let t = Instant::now();
        ing.submit(1, cube(), t).unwrap();
        ing.submit(2, cube(), t).unwrap();
        ing.submit(1, cube(), t).unwrap();
        let mut g = Vec::new();
        ing.next_group_into(2, &mut g);
        assert_eq!(
            g.iter().map(|p| (p.stream, p.scpi)).collect::<Vec<_>>(),
            vec![(1, 0), (2, 0)]
        );
        g.clear();
        ing.next_group_into(4, &mut g);
        assert_eq!(
            g.iter().map(|p| (p.stream, p.scpi)).collect::<Vec<_>>(),
            vec![(1, 1)]
        );
    }
}
