//! Admission control: who may submit, how much, and in what order.
//!
//! Every stream must be registered before it can submit; submissions
//! are sequenced per stream (the resident pipeline's weight FIFOs
//! require contiguous `scpi` from 0) and bounded per stream: once a
//! stream has `queue_depth` CPIs admitted-but-incomplete, further
//! submissions are rejected with [`Reject::QueueFull`] rather than
//! buffered without bound. Disconnecting a stream purges its
//! undispatched CPIs so a mid-flight producer failure cannot wedge the
//! batcher — and *retires* the id: per-stream pipeline state (weight
//! FIFOs, QR recursion) is keyed by stream id and may outlive the
//! disconnect inside a supervisor checkpoint, so a re-registered id
//! would inherit a stale weight schedule. Reconnecting tenants take a
//! fresh id.
//!
//! Admission is also where the quarantine state machine lives: a stream
//! whose consecutive-failure streak (non-finite submissions, degraded
//! completions) crosses [`AdmissionConfig::quarantine_streak`] is
//! refused with [`Reject::Quarantined`] for a timed probation window
//! that doubles on each re-offense (exponential backoff, reset by a
//! clean completion), so one tenant feeding garbage cannot keep burning
//! shared slots.

use crate::health::{LastOutcome, StreamHealth};
use stap_cube::CCube;
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

/// Why a submission was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reject {
    /// The stream has `queue_depth` CPIs in flight; shed load or wait.
    QueueFull {
        /// The offending stream.
        stream: u16,
        /// The configured per-stream bound that was hit.
        depth: usize,
    },
    /// The stream was never registered, already disconnected, or is a
    /// retired id (disconnected ids are never re-admitted).
    UnknownStream(u16),
    /// The cube's shape does not match the pipeline's `[K, J, N]`.
    BadShape {
        /// What the pipeline expects.
        expected: [usize; 3],
        /// What the caller submitted.
        got: [usize; 3],
    },
    /// The cube contains NaN/Inf samples (pre-admission screen); it
    /// never reached the pipeline. Repeated offenses quarantine the
    /// stream.
    NonFinite(u16),
    /// The stream is quarantined; retry after `retry_ms`.
    Quarantined {
        /// The quarantined stream.
        stream: u16,
        /// Milliseconds until the probation window opens.
        retry_ms: u64,
    },
    /// The server is shutting down.
    Closed,
}

impl Reject {
    /// Stable snake-case reason label (loadgen tallies and JSON).
    pub fn kind(&self) -> &'static str {
        match self {
            Reject::QueueFull { .. } => "queue_full",
            Reject::UnknownStream(_) => "unknown_stream",
            Reject::BadShape { .. } => "bad_shape",
            Reject::NonFinite(_) => "non_finite",
            Reject::Quarantined { .. } => "quarantined",
            Reject::Closed => "closed",
        }
    }
}

impl std::fmt::Display for Reject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reject::QueueFull { stream, depth } => {
                write!(f, "stream {stream}: queue full (depth {depth})")
            }
            Reject::UnknownStream(s) => write!(f, "stream {s}: not registered"),
            Reject::BadShape { expected, got } => {
                write!(f, "bad cube shape {got:?}, expected {expected:?}")
            }
            Reject::NonFinite(s) => write!(f, "stream {s}: non-finite samples"),
            Reject::Quarantined { stream, retry_ms } => {
                write!(f, "stream {stream}: quarantined (retry in {retry_ms} ms)")
            }
            Reject::Closed => write!(f, "server closed"),
        }
    }
}

/// Admission limits.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Per-stream high-water mark: admitted-but-incomplete CPIs beyond
    /// which submissions bounce with [`Reject::QueueFull`].
    pub queue_depth: usize,
    /// Required cube shape `[k_range, j_channels, n_pulses]`.
    pub shape: [usize; 3],
    /// Consecutive failures (non-finite rejects or degraded
    /// completions) before a stream is quarantined. 0 disables
    /// quarantine.
    pub quarantine_streak: u32,
    /// First quarantine window in milliseconds; doubles on each
    /// re-offense (capped at 30 s) and resets on a clean completion.
    pub probation_ms: u64,
}

/// One admitted CPI waiting for dispatch.
pub struct Pending {
    /// Owning stream.
    pub stream: u16,
    /// Per-stream CPI index assigned at admission.
    pub scpi: u32,
    /// The raw data cube.
    pub cube: CCube,
    /// Admission instant (starts the latency clock).
    pub submitted: Instant,
}

struct StreamState {
    next_scpi: u32,
    /// Admitted and not yet completed (spans the ready queue, the slot
    /// channel and the pipeline itself).
    in_flight: usize,
    /// Quarantine gate: submissions bounce until this instant.
    quarantined_until: Option<Instant>,
    /// Current backoff window (ms); doubles per re-offense.
    backoff_ms: u64,
}

/// Backoff growth cap: one offense can never lock a tenant out for
/// more than 30 s at a time.
const MAX_BACKOFF_MS: u64 = 30_000;

/// The shared admission ledger (lives under the server's mutex). Public
/// so embedders and the counting-allocator tests can drive admission
/// without a full server.
pub struct Ingest {
    cfg: AdmissionConfig,
    streams: HashMap<u16, StreamState>,
    /// Disconnected ids; never re-admitted (see module docs).
    retired: HashSet<u16>,
    /// Per-stream health rows, surviving disconnect.
    health: HashMap<u16, StreamHealth>,
    /// Admitted CPIs not yet handed to the slot batcher, in arrival
    /// order across streams.
    pub ready: VecDeque<Pending>,
    /// False once shutdown begins: all submissions bounce `Closed`.
    pub open: bool,
    /// Total rejected submissions (all streams, all reasons).
    pub rejected: u64,
    /// Undispatched CPIs purged by disconnects.
    pub purged: u64,
}

impl Ingest {
    /// A fresh ledger with no streams.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Ingest {
            cfg,
            streams: HashMap::new(),
            retired: HashSet::new(),
            health: HashMap::new(),
            ready: VecDeque::new(),
            open: true,
            rejected: 0,
            purged: 0,
        }
    }

    /// Registers a stream id. Idempotent for an already-active stream;
    /// a no-op for a retired id (its submissions keep bouncing
    /// [`Reject::UnknownStream`]).
    pub fn register(&mut self, stream: u16) {
        if self.retired.contains(&stream) {
            return;
        }
        self.streams.entry(stream).or_insert(StreamState {
            next_scpi: 0,
            in_flight: 0,
            quarantined_until: None,
            backoff_ms: 0,
        });
        self.health.entry(stream).or_insert_with(|| StreamHealth {
            stream,
            ..StreamHealth::default()
        });
    }

    /// True when `stream` was disconnected (its id is retired).
    pub fn is_retired(&self, stream: u16) -> bool {
        self.retired.contains(&stream)
    }

    fn health_row(&mut self, stream: u16) -> &mut StreamHealth {
        self.health.entry(stream).or_insert_with(|| StreamHealth {
            stream,
            ..StreamHealth::default()
        })
    }

    fn reject(&mut self, stream: u16, r: Reject) -> Reject {
        self.rejected += 1;
        let h = self.health_row(stream);
        h.rejects.bump(&r);
        h.last = if matches!(r, Reject::Quarantined { .. }) {
            LastOutcome::Quarantined
        } else {
            LastOutcome::Rejected
        };
        r
    }

    /// Fires the quarantine gate when the streak crosses the threshold.
    fn maybe_quarantine(&mut self, stream: u16, now: Instant) {
        let threshold = self.cfg.quarantine_streak;
        let probation = self.cfg.probation_ms;
        let streak = self.health_row(stream).streak;
        if threshold == 0 || streak < threshold {
            return;
        }
        let Some(st) = self.streams.get_mut(&stream) else {
            return;
        };
        if st.quarantined_until.is_some() {
            return;
        }
        let window = if st.backoff_ms == 0 {
            probation.max(1)
        } else {
            (st.backoff_ms * 2).min(MAX_BACKOFF_MS)
        };
        st.backoff_ms = window;
        st.quarantined_until = Some(now + Duration::from_millis(window));
        let h = self.health_row(stream);
        h.quarantines += 1;
        h.last = LastOutcome::Quarantined;
    }

    /// Quarantine gate for `stream`: `Some(reject)` while the window is
    /// closed, clearing the gate (probation) once it has elapsed.
    fn quarantine_gate(&mut self, stream: u16, now: Instant) -> Option<Reject> {
        let st = self.streams.get_mut(&stream)?;
        let until = st.quarantined_until?;
        if now < until {
            let retry_ms = until.duration_since(now).as_millis() as u64;
            return Some(Reject::Quarantined { stream, retry_ms });
        }
        // Probation: the gate opens but the backoff window is retained,
        // so a re-offense doubles it. A clean completion resets it.
        st.quarantined_until = None;
        None
    }

    /// Admits one CPI, assigning its per-stream sequence number. On
    /// rejection the cube rides back with the reason so the caller can
    /// recycle it into the pool instead of dropping the buffer.
    pub fn submit(
        &mut self,
        stream: u16,
        cube: CCube,
        now: Instant,
    ) -> Result<u32, (Reject, CCube)> {
        if !self.open {
            return Err((self.reject(stream, Reject::Closed), cube));
        }
        if cube.shape() != self.cfg.shape {
            let got = cube.shape();
            let r = Reject::BadShape {
                expected: self.cfg.shape,
                got,
            };
            return Err((self.reject(stream, r), cube));
        }
        if !self.streams.contains_key(&stream) {
            return Err((self.reject(stream, Reject::UnknownStream(stream)), cube));
        }
        if let Some(r) = self.quarantine_gate(stream, now) {
            return Err((self.reject(stream, r), cube));
        }
        let st = self.streams.get_mut(&stream).expect("checked above");
        if st.in_flight >= self.cfg.queue_depth {
            let r = Reject::QueueFull {
                stream,
                depth: self.cfg.queue_depth,
            };
            return Err((self.reject(stream, r), cube));
        }
        let scpi = st.next_scpi;
        st.next_scpi += 1;
        st.in_flight += 1;
        self.ready.push_back(Pending {
            stream,
            scpi,
            cube,
            submitted: now,
        });
        Ok(scpi)
    }

    /// Records a pre-admission non-finite screen hit: counts the
    /// failure against the stream's streak (possibly firing quarantine)
    /// and returns the reject the caller should surface. The cube never
    /// entered the ledger, so there is no depth/sequence effect.
    pub fn note_nonfinite(&mut self, stream: u16, now: Instant) -> Reject {
        if !self.open {
            return self.reject(stream, Reject::Closed);
        }
        if !self.streams.contains_key(&stream) {
            return self.reject(stream, Reject::UnknownStream(stream));
        }
        if let Some(r) = self.quarantine_gate(stream, now) {
            return self.reject(stream, r);
        }
        let r = self.reject(stream, Reject::NonFinite(stream));
        self.health_row(stream).streak += 1;
        self.maybe_quarantine(stream, now);
        r
    }

    /// Cheap admission probe: would a submission for `stream` be
    /// admitted right now? With one producer per stream (the sequencing
    /// contract), a `true` answer cannot be invalidated concurrently —
    /// other threads only *complete* CPIs, which frees depth.
    /// Quarantined streams stay "ready" so their producers keep probing
    /// and collecting the typed reject (with its retry hint) instead of
    /// parking forever on a condvar nobody signals for them.
    pub fn ready_for(&self, stream: u16) -> bool {
        self.open
            && self
                .streams
                .get(&stream)
                .is_some_and(|st| st.in_flight < self.cfg.queue_depth)
    }

    /// Removes a stream, retires its id and purges its undispatched
    /// CPIs (CPIs already handed to the pipeline still complete, and
    /// drain as `Dropped` in the stream's health). Returns cubes purged
    /// so the caller can recycle them into the pool outside the lock.
    pub fn disconnect(&mut self, stream: u16) -> Vec<CCube> {
        self.streams.remove(&stream);
        self.retired.insert(stream);
        let mut dropped = Vec::new();
        self.ready.retain_mut(|p| {
            if p.stream == stream {
                dropped.push(std::mem::replace(&mut p.cube, CCube::zeros([0, 0, 0])));
                false
            } else {
                true
            }
        });
        self.purged += dropped.len() as u64;
        if !dropped.is_empty() || self.health.contains_key(&stream) {
            let h = self.health_row(stream);
            h.dropped += dropped.len() as u64;
            if !dropped.is_empty() {
                h.last = LastOutcome::Dropped;
            }
        }
        dropped
    }

    /// Takes up to `max` ready CPIs for one pipeline slot. The batcher
    /// takes in arrival order, so a slot naturally mixes streams.
    pub fn next_group_into(&mut self, max: usize, out: &mut Vec<Pending>) {
        while out.len() < max {
            match self.ready.pop_front() {
                Some(p) => out.push(p),
                None => break,
            }
        }
    }

    /// Marks one CPI complete: frees a unit of that stream's depth and
    /// folds the outcome into its health. A completion for a
    /// disconnected stream is a *drain* — the result has no consumer —
    /// and counts as `Dropped`.
    pub fn complete(&mut self, stream: u16, degraded: bool, now: Instant) {
        if let Some(st) = self.streams.get_mut(&stream) {
            st.in_flight = st.in_flight.saturating_sub(1);
            if degraded {
                let h = self.health_row(stream);
                h.degraded += 1;
                h.streak += 1;
                h.last = LastOutcome::Degraded;
                self.maybe_quarantine(stream, now);
            } else {
                if let Some(st) = self.streams.get_mut(&stream) {
                    st.backoff_ms = 0;
                }
                let h = self.health_row(stream);
                h.ok += 1;
                h.streak = 0;
                h.last = LastOutcome::Ok;
            }
        } else {
            let h = self.health_row(stream);
            h.dropped += 1;
            h.last = LastOutcome::Dropped;
        }
    }

    /// Records a CPI lost across a supervisor recovery (its stream left
    /// while the slot was pending replay).
    pub fn note_lost(&mut self, stream: u16) {
        let h = self.health_row(stream);
        h.dropped += 1;
        h.last = LastOutcome::Dropped;
    }

    /// Snapshot of every stream's health, sorted by id, with the live
    /// quarantine flag folded in.
    pub fn stream_health(&self, now: Instant) -> Vec<StreamHealth> {
        let mut rows: Vec<StreamHealth> = self
            .health
            .values()
            .map(|h| {
                let mut row = h.clone();
                row.quarantined_now = self
                    .streams
                    .get(&h.stream)
                    .and_then(|st| st.quarantined_until)
                    .is_some_and(|until| now < until);
                row
            })
            .collect();
        rows.sort_by_key(|h| h.stream);
        rows
    }

    /// Total quarantine firings across every stream.
    pub fn quarantines(&self) -> u64 {
        self.health.values().map(|h| h.quarantines as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(depth: usize) -> AdmissionConfig {
        AdmissionConfig {
            queue_depth: depth,
            shape: [2, 2, 2],
            quarantine_streak: 0,
            probation_ms: 10,
        }
    }

    fn ingest(depth: usize) -> Ingest {
        Ingest::new(config(depth))
    }

    fn cube() -> CCube {
        CCube::zeros([2, 2, 2])
    }

    #[test]
    fn sequences_per_stream_and_bounds_depth() {
        let mut ing = ingest(2);
        ing.register(7);
        let t = Instant::now();
        assert_eq!(ing.submit(7, cube(), t).unwrap(), 0);
        assert_eq!(ing.submit(7, cube(), t).unwrap(), 1);
        assert_eq!(
            ing.submit(7, cube(), t).unwrap_err().0,
            Reject::QueueFull {
                stream: 7,
                depth: 2
            }
        );
        assert_eq!(ing.rejected, 1);
        ing.complete(7, false, t);
        assert_eq!(ing.submit(7, cube(), t).unwrap(), 2);
        let rows = ing.stream_health(t);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].ok, 1);
        assert_eq!(rows[0].rejects.queue_full, 1);
    }

    #[test]
    fn rejects_unknown_stream_and_bad_shape() {
        let mut ing = ingest(4);
        ing.register(1);
        let t = Instant::now();
        assert_eq!(
            ing.submit(2, cube(), t).unwrap_err().0,
            Reject::UnknownStream(2)
        );
        assert_eq!(
            ing.submit(1, CCube::zeros([1, 2, 2]), t).unwrap_err().0,
            Reject::BadShape {
                expected: [2, 2, 2],
                got: [1, 2, 2]
            }
        );
        ing.open = false;
        assert_eq!(ing.submit(1, cube(), t).unwrap_err().0, Reject::Closed);
        assert_eq!(ing.rejected, 3);
    }

    #[test]
    fn disconnect_purges_and_retires_the_id() {
        let mut ing = ingest(8);
        ing.register(1);
        ing.register(2);
        let t = Instant::now();
        for _ in 0..3 {
            ing.submit(1, cube(), t).unwrap();
            ing.submit(2, cube(), t).unwrap();
        }
        let purged = ing.disconnect(1);
        assert_eq!(purged.len(), 3);
        assert_eq!(ing.purged, 3);
        assert_eq!(ing.ready.len(), 3);
        assert!(ing.ready.iter().all(|p| p.stream == 2));
        assert!(ing.is_retired(1));
        // The id is retired: re-registration is a no-op and submissions
        // keep bouncing (per-stream pipeline state may still reference
        // the old sequence). Reconnecting tenants take a fresh id.
        ing.register(1);
        assert_eq!(
            ing.submit(1, cube(), t).unwrap_err().0,
            Reject::UnknownStream(1)
        );
        let rows = ing.stream_health(t);
        let h1 = rows.iter().find(|h| h.stream == 1).unwrap();
        assert_eq!(h1.dropped, 3, "purged CPIs count as dropped");
        // A fresh id works normally.
        ing.register(3);
        assert_eq!(ing.submit(3, cube(), t).unwrap(), 0);
    }

    #[test]
    fn batcher_mixes_streams_in_arrival_order() {
        let mut ing = ingest(8);
        ing.register(1);
        ing.register(2);
        let t = Instant::now();
        ing.submit(1, cube(), t).unwrap();
        ing.submit(2, cube(), t).unwrap();
        ing.submit(1, cube(), t).unwrap();
        let mut g = Vec::new();
        ing.next_group_into(2, &mut g);
        assert_eq!(
            g.iter().map(|p| (p.stream, p.scpi)).collect::<Vec<_>>(),
            vec![(1, 0), (2, 0)]
        );
        g.clear();
        ing.next_group_into(4, &mut g);
        assert_eq!(
            g.iter().map(|p| (p.stream, p.scpi)).collect::<Vec<_>>(),
            vec![(1, 1)]
        );
    }

    #[test]
    fn nonfinite_streak_quarantines_with_exponential_backoff() {
        let mut ing = Ingest::new(AdmissionConfig {
            quarantine_streak: 2,
            probation_ms: 100,
            ..config(8)
        });
        ing.register(5);
        let t0 = Instant::now();
        assert_eq!(ing.note_nonfinite(5, t0), Reject::NonFinite(5));
        // Second consecutive offense trips the gate.
        assert_eq!(ing.note_nonfinite(5, t0), Reject::NonFinite(5));
        match ing.submit(5, cube(), t0).unwrap_err().0 {
            Reject::Quarantined {
                stream: 5,
                retry_ms,
            } => assert!(retry_ms <= 100),
            other => panic!("expected Quarantined, got {other:?}"),
        }
        assert!(ing.stream_health(t0)[0].quarantined_now);
        assert_eq!(ing.stream_health(t0)[0].quarantines, 1);

        // Probation: after the window the gate opens...
        let t1 = t0 + Duration::from_millis(150);
        assert_eq!(ing.submit(5, cube(), t1).unwrap(), 0);
        assert!(!ing.stream_health(t1)[0].quarantined_now);
        // ...but the streak is still over threshold, so one more
        // offense re-fires with a doubled window.
        assert_eq!(ing.note_nonfinite(5, t1), Reject::NonFinite(5));
        match ing.submit(5, cube(), t1).unwrap_err().0 {
            Reject::Quarantined { retry_ms, .. } => {
                assert!(retry_ms > 100, "backoff must double, got {retry_ms}")
            }
            other => panic!("expected Quarantined, got {other:?}"),
        }
        assert_eq!(ing.stream_health(t1)[0].quarantines, 2);

        // A clean completion resets streak and backoff.
        let t2 = t1 + Duration::from_millis(250);
        ing.complete(5, false, t2);
        let h = &ing.stream_health(t2)[0];
        assert_eq!(h.streak, 0);
        assert_eq!(h.ok, 1);
        assert!(!h.quarantined_now);
    }

    #[test]
    fn degraded_completions_feed_the_streak() {
        let mut ing = Ingest::new(AdmissionConfig {
            quarantine_streak: 3,
            probation_ms: 50,
            ..config(8)
        });
        ing.register(9);
        let t = Instant::now();
        for _ in 0..3 {
            ing.submit(9, cube(), t).unwrap();
        }
        // Dispatch all three (they are in flight, not queued).
        let mut g = Vec::new();
        ing.next_group_into(8, &mut g);
        ing.complete(9, true, t);
        ing.complete(9, true, t);
        assert_eq!(ing.stream_health(t)[0].streak, 2);
        ing.complete(9, true, t);
        assert!(ing.stream_health(t)[0].quarantined_now);
        // Drained completions for a disconnected stream count Dropped.
        ing.disconnect(9);
        ing.complete(9, false, t);
        let h = &ing.stream_health(t)[0];
        assert_eq!(h.dropped, 1);
        assert_eq!(h.last, LastOutcome::Dropped);
    }
}
