//! Multi-stream ingestion front end for the resident STAP pipeline.
//!
//! The paper evaluates the pipeline on one CPI stream; an operational
//! radar processor serves *many* — one per active surveillance sector,
//! each submitting CPIs concurrently. This crate is the long-running
//! front end over [`stap_pipeline::ResidentStap`]:
//!
//! * [`admission`] — per-stream registration, in-order sequencing,
//!   bounded per-stream depth with reject-with-reason beyond the
//!   high-water mark, and purge-on-disconnect;
//! * [`server`] — [`server::StapServer`]: a background resident
//!   pipeline fed through a bounded (credit-based) slot channel, with
//!   cross-stream batching — CPIs from different streams coalesce into
//!   one pipeline slot so the FFT/GEMM kernels amortize across streams;
//! * [`slo`] — latency percentile math for p50/p99 service objectives;
//! * [`loadgen`] — a synthetic multi-stream load generator used by
//!   `stapctl loadgen`, `stapctl bench --streams` and the smoke tests;
//! * [`health`] — per-stream outcome/reject counters, fault streaks,
//!   and the quarantine bookkeeping surfaced in [`ServeSummary`];
//! * [`supervisor`] — supervised serving: periodic checkpoint export at
//!   slot boundaries, panic recovery by rebuild-and-replay from the
//!   last checkpoint (bit-identical for surviving streams), typed
//!   [`Recovered`] events;
//! * [`chaos`] — a seeded, deterministic fault campaign
//!   (`stapctl chaos`) that kills a rank mid-run, corrupts a tenant,
//!   churns another, and gates on recovery/quarantine/lost-CPI
//!   invariants.

pub mod admission;
pub mod chaos;
pub mod health;
pub mod loadgen;
pub mod server;
pub mod slo;
pub mod supervisor;

pub use admission::{AdmissionConfig, Ingest, Pending, Reject};
pub use chaos::{run_chaos, ChaosConfig, ChaosReport};
pub use health::{LastOutcome, RejectCounts, StreamHealth};
pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenReport};
pub use server::{ServeSummary, ServerConfig, StapServer, StreamStats};
pub use slo::{percentile, LatencyProfile};
pub use supervisor::{run_supervised, Recovered, SupervisorConfig, SupervisorHooks};
