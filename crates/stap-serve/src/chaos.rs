//! Seeded chaos campaigns over the supervised serve runtime.
//!
//! One campaign = one deterministic fault schedule driven against a
//! live multi-stream server, gated on invariants rather than outputs:
//!
//! * **engine kill** — a scheduled rank panic poisons the world mid
//!   epoch; the supervisor must recover and the campaign must complete
//!   (no deadlock, bounded wall clock);
//! * **stream churn** — one stream disconnects mid-run and reconnects
//!   under a fresh id while slots are in flight;
//! * **corrupt tenant** — one stream submits NaN cubes; the admission
//!   screen must reject them and the quarantine state machine must
//!   fire, while healthy tenants keep completing;
//! * **in-transit corruption + stall** — a masked-tag corrupt rule and
//!   a short rank stall exercise degraded-completion attribution and
//!   the schedule's tolerance for jitter.
//!
//! The gates: at least one recovery, quarantine fired, lost CPIs within
//! the checkpoint bound (`checkpoint_every * max_group`), every healthy
//! stream's CPIs all completed, and healthy p99 within the (structural,
//! generous) degradation budget. `stapctl chaos` runs a campaign and
//! `--expect` asserts on the emitted JSON; check.sh stage 11 and CI
//! gate on it.

use crate::server::{ServerConfig, StapServer};
use crate::supervisor::SupervisorConfig;
use stap_core::params::StapParams;
use stap_math::Cx;
use stap_mp::{FaultAction, FaultPlan, FaultRule, TagPattern};
use stap_pipeline::msg::Edge;
use stap_pipeline::{assignment, NodeAssignment, ResidentStap};
use stap_radar::Scenario;
use stap_util::Json;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Campaign knobs. Everything is derived from `seed` — two runs with
/// the same config inject the same faults at the same slots.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Master seed for fault schedule and scenario data.
    pub seed: u64,
    /// CPIs each healthy stream submits.
    pub cpis_per_stream: usize,
    /// Supervisor checkpoint cadence (slots); also sets the scheduled
    /// panic slot (`checkpoint_every - 1`, the last slot before the
    /// first checkpoint would have banked) and the lost-CPI bound.
    pub checkpoint_every: u64,
    /// Healthy-stream p99 degradation budget in milliseconds. This is a
    /// structural bound (catches stalls and recovery storms), not a
    /// performance target — default is deliberately generous.
    pub p99_budget_ms: f64,
    /// Whole-campaign watchdog; exceeding it reports a deadlock.
    pub deadline_s: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        // Both wall-clock gates scale with STAP_CI_SLACK (1 unless CI
        // sets it): shared runners can be arbitrarily slow, and a slack
        // multiplier on the budget beats a flaky deadline.
        ChaosConfig {
            seed: 7,
            cpis_per_stream: 10,
            checkpoint_every: 3,
            p99_budget_ms: 30_000.0 * stap_util::ci_slack(),
            deadline_s: stap_util::slacked_secs(120),
        }
    }
}

/// Campaign outcome: the invariant gates plus the numbers behind them.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// True when the campaign overran its watchdog deadline.
    pub deadlock: bool,
    /// Supervisor recoveries performed.
    pub recovered: u64,
    /// True when at least one quarantine fired.
    pub quarantine_fired: bool,
    /// Quarantine firings (re-offenses under backoff count again).
    pub quarantine_events: u64,
    /// Sub-CPIs lost across recoveries.
    pub lost_cpis: u64,
    /// The configured recovery bound (`checkpoint_every * max_group`).
    pub lost_bound: u64,
    /// Worst p99 among the never-faulted streams, milliseconds.
    pub healthy_p99_ms: f64,
    /// The configured budget it is gated against.
    pub p99_budget_ms: f64,
    /// CPIs completed across all streams.
    pub cpis: u64,
    /// CPIs that completed degraded (in-transit corruption screened at
    /// the detector).
    pub degraded_cpis: u64,
    /// True when the churned tenant's reconnect (under a fresh id)
    /// completed CPIs.
    pub reconnect_ok: bool,
    /// Checkpoints banked by the supervisor.
    pub checkpoints: u64,
    /// Every gate that failed, human-readable; empty = campaign passed.
    pub failures: Vec<String>,
    /// All gates held.
    pub passed: bool,
}

impl ChaosReport {
    /// Flat JSON for `stapctl chaos --expect` and the CI artifact.
    /// Boolean gates render as 0/1 so `--expect quarantined=1` works.
    pub fn to_json(&self) -> Json {
        let b = |v: bool| Json::Num(if v { 1.0 } else { 0.0 });
        Json::obj([
            ("deadlock", b(self.deadlock)),
            ("recovered", Json::Num(self.recovered as f64)),
            ("quarantined", b(self.quarantine_fired)),
            (
                "quarantine_events",
                Json::Num(self.quarantine_events as f64),
            ),
            ("lost_cpis", Json::Num(self.lost_cpis as f64)),
            ("lost_bound", Json::Num(self.lost_bound as f64)),
            ("healthy_p99_ms", Json::Num(self.healthy_p99_ms)),
            ("p99_budget_ms", Json::Num(self.p99_budget_ms)),
            ("cpis", Json::Num(self.cpis as f64)),
            ("degraded_cpis", Json::Num(self.degraded_cpis as f64)),
            ("reconnect_ok", b(self.reconnect_ok)),
            ("checkpoints", Json::Num(self.checkpoints as f64)),
            (
                "failures",
                Json::arr(self.failures.iter().map(|f| Json::Str(f.clone()))),
            ),
            ("passed", b(self.passed)),
        ])
    }
}

/// Stream ids used by the campaign.
const HEALTHY: [u16; 2] = [0, 2];
const CHURN: u16 = 1;
const CHURN_REBORN: u16 = 4;
const CORRUPT: u16 = 3;
const MAX_GROUP: usize = 2;

/// Runs one seeded campaign on the reduced geometry and gates the
/// result. Never panics on gate failure — failures are reported in the
/// returned [`ChaosReport`] so the CLI can render them and exit
/// non-zero.
pub fn run_chaos(cfg: ChaosConfig) -> ChaosReport {
    let (tx, rx) = mpsc::channel();
    let watchdog = std::thread::spawn(move || {
        let _ = tx.send(campaign(cfg));
    });
    match rx.recv_timeout(Duration::from_secs(cfg.deadline_s.max(1))) {
        Ok(report) => {
            let _ = watchdog.join();
            report
        }
        Err(_) => {
            // The campaign is wedged; leak its threads (the process is
            // about to exit) and report the deadlock — this IS the
            // no-deadlock gate failing.
            ChaosReport {
                deadlock: true,
                p99_budget_ms: cfg.p99_budget_ms,
                lost_bound: cfg.checkpoint_every * MAX_GROUP as u64,
                failures: vec![format!(
                    "deadlock: campaign exceeded the {} s watchdog",
                    cfg.deadline_s
                )],
                ..ChaosReport::default()
            }
        }
    }
}

fn campaign(cfg: ChaosConfig) -> ChaosReport {
    let checkpoint_every = cfg.checkpoint_every.max(2);
    let assign = NodeAssignment::tiny();
    // Kill a pulse-compression rank on the last slot before the first
    // checkpoint would bank — maximizing the replayed trajectory.
    let pc_rank = assign.rank_range(assignment::PC).start;
    let panic_slot = checkpoint_every - 1;
    let plan0 = FaultPlan::seeded(cfg.seed)
        .panic_rank(pc_rank, panic_slot)
        // A short stall on a Doppler rank adds jitter ahead of the kill.
        .stall_rank(0, 0, Duration::from_millis(15))
        // One in-transit corruption on the pc->cfar power edge: the
        // detector's screen must flag the owning sub-CPI degraded.
        .rule(FaultRule {
            src: None,
            dst: None,
            tag: TagPattern::masked(0xFFFFu64 << 48, (Edge::PcToCfar as u64) << 48),
            action: FaultAction::Corrupt,
            max_hits: 1,
        });

    let params = StapParams::reduced();
    let scenario = Scenario::reduced(cfg.seed);
    let resident = ResidentStap::for_scenario(params, assign, &scenario);
    let server = Arc::new(StapServer::start(
        resident,
        ServerConfig {
            window: 2,
            max_group: MAX_GROUP,
            queue_depth: 4,
            streams_hint: 5,
            warmup_cpis: 0,
            supervised: Some(SupervisorConfig {
                checkpoint_every,
                max_recoveries: 3,
                plans: vec![plan0],
            }),
            screen: true,
            quarantine_streak: 2,
            probation_ms: 40,
            ..ServerConfig::default()
        },
    ));

    let mut producers = Vec::new();

    // Healthy tenants: full load, retrying through quarantine windows
    // (they should never see one) and queue pressure.
    for &stream in &HEALTHY {
        let srv = server.clone();
        let n = cfg.cpis_per_stream;
        let seed = cfg.seed + stream as u64;
        producers.push(std::thread::spawn(move || {
            drive_stream(&srv, stream, seed, n);
        }));
    }

    // Churn tenant: half its CPIs, a mid-flight disconnect (slots still
    // in the pipeline), then a reconnect under a fresh id.
    {
        let srv = server.clone();
        let n = cfg.cpis_per_stream;
        let seed = cfg.seed + CHURN as u64;
        producers.push(std::thread::spawn(move || {
            drive_stream(&srv, CHURN, seed, n / 2);
            srv.disconnect(CHURN);
            std::thread::sleep(Duration::from_millis(20));
            drive_stream(&srv, CHURN_REBORN, seed + 100, n.div_ceil(2));
        }));
    }

    // Corrupt tenant: NaN cubes until quarantine has demonstrably
    // fired (bounded attempts — the gate reports if it never does).
    {
        let srv = server.clone();
        producers.push(std::thread::spawn(move || {
            srv.register(CORRUPT);
            let mut quarantined = 0u32;
            for _ in 0..16 {
                let cube = srv.take_cube(|_, _, _| Cx::new(f64::NAN, 0.0));
                match srv.submit(CORRUPT, cube) {
                    Err(crate::Reject::Quarantined { .. }) => quarantined += 1,
                    Err(crate::Reject::Closed) => break,
                    _ => {}
                }
                if quarantined >= 2 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }));
    }

    for p in producers {
        p.join().expect("chaos producer panicked");
    }
    let server = Arc::into_inner(server).expect("producers released the server");
    let summary = match server.shutdown() {
        Ok(s) => s,
        Err(e) => {
            return ChaosReport {
                p99_budget_ms: cfg.p99_budget_ms,
                lost_bound: checkpoint_every * MAX_GROUP as u64,
                failures: vec![format!("engine unrecoverable: {e}")],
                ..ChaosReport::default()
            }
        }
    };

    let lost_bound = checkpoint_every * MAX_GROUP as u64;
    let healthy_p99_ms = HEALTHY
        .iter()
        .filter_map(|&id| summary.streams.iter().find(|s| s.stream == id))
        .map(|s| s.latency.p99_ms)
        .fold(0.0_f64, f64::max);
    let reconnect_ok = summary
        .streams
        .iter()
        .any(|s| s.stream == CHURN_REBORN && s.cpis > 0);

    let mut failures = Vec::new();
    if summary.recoveries < 1 {
        failures.push("no recovery: the scheduled panic did not trigger one".into());
    }
    if summary.quarantines < 1 {
        failures.push("quarantine never fired for the corrupt stream".into());
    }
    if summary.lost_cpis > lost_bound {
        failures.push(format!(
            "lost {} CPIs, recovery bound is {lost_bound}",
            summary.lost_cpis
        ));
    }
    if healthy_p99_ms > cfg.p99_budget_ms {
        failures.push(format!(
            "healthy p99 {healthy_p99_ms:.1} ms over the {:.1} ms budget",
            cfg.p99_budget_ms
        ));
    }
    for &id in &HEALTHY {
        let got = summary
            .streams
            .iter()
            .find(|s| s.stream == id)
            .map_or(0, |s| s.cpis);
        if got != cfg.cpis_per_stream as u64 {
            failures.push(format!(
                "healthy stream {id} completed {got}/{} CPIs",
                cfg.cpis_per_stream
            ));
        }
    }
    if !reconnect_ok {
        failures.push("churned tenant's reconnect completed no CPIs".into());
    }

    ChaosReport {
        deadlock: false,
        recovered: summary.recoveries,
        quarantine_fired: summary.quarantines > 0,
        quarantine_events: summary.quarantines,
        lost_cpis: summary.lost_cpis,
        lost_bound,
        healthy_p99_ms,
        p99_budget_ms: cfg.p99_budget_ms,
        cpis: summary.cpis,
        degraded_cpis: summary.resident.health.degraded_cpis,
        reconnect_ok,
        checkpoints: summary.checkpoints,
        passed: failures.is_empty(),
        failures,
    }
}

/// Submits `n` scenario CPIs on `stream`, riding out transient rejects.
fn drive_stream(srv: &StapServer, stream: u16, seed: u64, n: usize) {
    srv.register(stream);
    let cubes: Vec<_> = Scenario::reduced(seed)
        .stream(n)
        .map(|(_, _, c)| c)
        .collect();
    'cpis: for c in &cubes {
        for _ in 0..64 {
            srv.wait_ready(stream);
            let cube = srv.take_cube_from(c);
            match srv.submit(stream, cube) {
                Ok(_) => continue 'cpis,
                Err(crate::Reject::Closed) => return,
                Err(crate::Reject::Quarantined { retry_ms, .. }) => {
                    std::thread::sleep(Duration::from_millis(retry_ms.clamp(1, 50)));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
        return; // give up on a stream that cannot get a CPI admitted
    }
}
