//! Per-stream health ledger: outcome counters, failure streaks and the
//! quarantine record.
//!
//! The resident pipeline reports *what* happened to each CPI (clean,
//! degraded by non-finite data, dropped); the admission layer reports
//! *why* submissions bounced. This module folds both into one
//! [`StreamHealth`] row per stream so a degraded tenant is diagnosable
//! from `ServeSummary::to_json` alone: which stream, how often, whether
//! the quarantine state machine fired, and what happened last.

use crate::admission::Reject;
use stap_util::json::Json;

/// The most recent thing that happened to a stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LastOutcome {
    /// Nothing yet (registered, no traffic).
    #[default]
    None,
    /// Last CPI completed clean.
    Ok,
    /// Last CPI completed with non-finite samples screened out.
    Degraded,
    /// Last CPI was dropped (purged at disconnect, lost in recovery, or
    /// drained after the stream left).
    Dropped,
    /// Last submission was rejected at admission.
    Rejected,
    /// The stream is (or was last) quarantined.
    Quarantined,
}

impl LastOutcome {
    /// Stable lower-case label for JSON.
    pub fn label(self) -> &'static str {
        match self {
            LastOutcome::None => "none",
            LastOutcome::Ok => "ok",
            LastOutcome::Degraded => "degraded",
            LastOutcome::Dropped => "dropped",
            LastOutcome::Rejected => "rejected",
            LastOutcome::Quarantined => "quarantined",
        }
    }
}

/// Per-reason admission reject counters for one stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RejectCounts {
    /// [`Reject::QueueFull`] bounces (backpressure, not a fault).
    pub queue_full: u64,
    /// [`Reject::UnknownStream`] bounces (unregistered or retired id).
    pub unknown: u64,
    /// [`Reject::BadShape`] bounces.
    pub bad_shape: u64,
    /// [`Reject::NonFinite`] bounces (pre-admission screen).
    pub non_finite: u64,
    /// [`Reject::Quarantined`] bounces.
    pub quarantined: u64,
    /// [`Reject::Closed`] bounces.
    pub closed: u64,
}

impl RejectCounts {
    /// Bumps the counter matching `r`.
    pub fn bump(&mut self, r: &Reject) {
        match r {
            Reject::QueueFull { .. } => self.queue_full += 1,
            Reject::UnknownStream(_) => self.unknown += 1,
            Reject::BadShape { .. } => self.bad_shape += 1,
            Reject::NonFinite(_) => self.non_finite += 1,
            Reject::Quarantined { .. } => self.quarantined += 1,
            Reject::Closed => self.closed += 1,
        }
    }

    /// Total rejects across every reason.
    pub fn total(&self) -> u64 {
        self.queue_full
            + self.unknown
            + self.bad_shape
            + self.non_finite
            + self.quarantined
            + self.closed
    }
}

/// One stream's health record for the session.
#[derive(Clone, Debug, Default)]
pub struct StreamHealth {
    /// Stream id.
    pub stream: u16,
    /// CPIs completed clean.
    pub ok: u64,
    /// CPIs completed with screened non-finite data.
    pub degraded: u64,
    /// CPIs that never produced a result: purged at disconnect, lost
    /// across a recovery, or drained after the stream left.
    pub dropped: u64,
    /// Admission rejects by reason.
    pub rejects: RejectCounts,
    /// Consecutive failures (non-finite rejects or degraded
    /// completions); a clean completion resets it.
    pub streak: u32,
    /// Times the quarantine state machine fired for this stream.
    pub quarantines: u32,
    /// True when the stream is quarantined right now.
    pub quarantined_now: bool,
    /// Most recent outcome.
    pub last: LastOutcome,
}

impl StreamHealth {
    /// JSON row for `ServeSummary::to_json`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("stream", Json::Num(self.stream as f64)),
            ("ok", Json::Num(self.ok as f64)),
            ("degraded", Json::Num(self.degraded as f64)),
            ("dropped", Json::Num(self.dropped as f64)),
            (
                "rejects",
                Json::obj([
                    ("queue_full", Json::Num(self.rejects.queue_full as f64)),
                    ("unknown", Json::Num(self.rejects.unknown as f64)),
                    ("bad_shape", Json::Num(self.rejects.bad_shape as f64)),
                    ("non_finite", Json::Num(self.rejects.non_finite as f64)),
                    ("quarantined", Json::Num(self.rejects.quarantined as f64)),
                    ("closed", Json::Num(self.rejects.closed as f64)),
                    ("total", Json::Num(self.rejects.total() as f64)),
                ]),
            ),
            ("streak", Json::Num(self.streak as f64)),
            ("quarantines", Json::Num(self.quarantines as f64)),
            ("quarantined_now", Json::Bool(self.quarantined_now)),
            ("last", Json::Str(self.last.label().to_string())),
        ])
    }
}
