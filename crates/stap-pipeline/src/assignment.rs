//! Node counts per task and the derived rank layout and partitions.

use stap_core::StapParams;
use stap_cube::block_ranges;
use std::ops::Range;

/// Task indices (paper numbering).
pub const DOPPLER: usize = 0;
/// Easy weight computation.
pub const EASY_WT: usize = 1;
/// Hard weight computation.
pub const HARD_WT: usize = 2;
/// Easy beamforming.
pub const EASY_BF: usize = 3;
/// Hard beamforming.
pub const HARD_BF: usize = 4;
/// Pulse compression.
pub const PC: usize = 5;
/// CFAR processing.
pub const CFAR: usize = 6;

/// Short task names matching the paper's tables.
pub const TASK_NAMES: [&str; 7] = [
    "Doppler filter",
    "easy weight",
    "hard weight",
    "easy BF",
    "hard BF",
    "pulse compr",
    "CFAR",
];

/// How many nodes each of the seven tasks gets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeAssignment(pub [usize; 7]);

impl NodeAssignment {
    /// Paper Table 7, case 1: 236 nodes.
    pub fn case1() -> Self {
        NodeAssignment([32, 16, 112, 16, 28, 16, 16])
    }

    /// Paper Table 7, case 2: 118 nodes.
    pub fn case2() -> Self {
        NodeAssignment([16, 8, 56, 8, 14, 8, 8])
    }

    /// Paper Table 7, case 3: 59 nodes.
    pub fn case3() -> Self {
        NodeAssignment([8, 4, 28, 4, 7, 4, 4])
    }

    /// Paper Table 9: case 2 plus 4 Doppler nodes (122 total).
    pub fn table9() -> Self {
        NodeAssignment([20, 8, 56, 8, 14, 8, 8])
    }

    /// Paper Table 10: Table 9 plus 8+8 nodes on PC and CFAR (138).
    pub fn table10() -> Self {
        NodeAssignment([20, 8, 56, 8, 14, 16, 16])
    }

    /// A tiny assignment for threaded tests on few cores.
    pub fn tiny() -> Self {
        NodeAssignment([2, 1, 2, 1, 1, 2, 1])
    }

    /// Total node count.
    pub fn total(&self) -> usize {
        self.0.iter().sum()
    }

    /// Nodes of task `t`.
    pub fn nodes(&self, t: usize) -> usize {
        self.0[t]
    }

    /// Global rank range of task `t` (tasks laid out consecutively;
    /// the driver rank comes after all task ranks).
    pub fn rank_range(&self, t: usize) -> Range<usize> {
        let start: usize = self.0[..t].iter().sum();
        start..start + self.0[t]
    }

    /// The task and local index of global rank `r` (`None` for the
    /// driver rank).
    pub fn task_of_rank(&self, r: usize) -> Option<(usize, usize)> {
        let mut start = 0;
        for t in 0..7 {
            if r < start + self.0[t] {
                return Some((t, r - start));
            }
            start += self.0[t];
        }
        None
    }

    /// The driver (source + sink) rank.
    pub fn driver_rank(&self) -> usize {
        self.total()
    }

    /// World size including the driver.
    pub fn world_size(&self) -> usize {
        self.total() + 1
    }
}

/// Per-task data partitions for a given parameter set and assignment.
///
/// * Doppler partitions the `K` axis;
/// * easy weight and easy BF partition the easy-bin index space
///   (`0..n_easy`);
/// * hard weight and hard BF partition the hard-bin index space
///   (`0..n_hard`);
/// * pulse compression and CFAR partition the natural bin space
///   (`0..N`).
#[derive(Clone, Debug)]
pub struct Partitions {
    /// Range-cell ranges per Doppler node.
    pub doppler_k: Vec<Range<usize>>,
    /// Easy-bin-index ranges per easy-weight node.
    pub easy_wt_bins: Vec<Range<usize>>,
    /// Hard-bin-index ranges per hard-weight node.
    pub hard_wt_bins: Vec<Range<usize>>,
    /// Easy-bin-index ranges per easy-BF node.
    pub easy_bf_bins: Vec<Range<usize>>,
    /// Hard-bin-index ranges per hard-BF node.
    pub hard_bf_bins: Vec<Range<usize>>,
    /// Natural-bin ranges per pulse-compression node.
    pub pc_bins: Vec<Range<usize>>,
    /// Natural-bin ranges per CFAR node.
    pub cfar_bins: Vec<Range<usize>>,
}

impl Partitions {
    /// Builds all partitions.
    pub fn new(params: &StapParams, a: &NodeAssignment) -> Self {
        Partitions {
            doppler_k: block_ranges(params.k_range, a.nodes(DOPPLER)),
            easy_wt_bins: block_ranges(params.n_easy(), a.nodes(EASY_WT)),
            hard_wt_bins: block_ranges(params.n_hard, a.nodes(HARD_WT)),
            easy_bf_bins: block_ranges(params.n_easy(), a.nodes(EASY_BF)),
            hard_bf_bins: block_ranges(params.n_hard, a.nodes(HARD_BF)),
            pc_bins: block_ranges(params.n_pulses, a.nodes(PC)),
            cfar_bins: block_ranges(params.n_pulses, a.nodes(CFAR)),
        }
    }
}

/// Intersection helper shared by the task loops.
pub fn overlap(a: &Range<usize>, b: &Range<usize>) -> Range<usize> {
    let s = a.start.max(b.start);
    let e = a.end.min(b.end);
    if s >= e {
        0..0
    } else {
        s..e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cases_total_correctly() {
        assert_eq!(NodeAssignment::case1().total(), 236);
        assert_eq!(NodeAssignment::case2().total(), 118);
        assert_eq!(NodeAssignment::case3().total(), 59);
        assert_eq!(NodeAssignment::table9().total(), 122);
        assert_eq!(NodeAssignment::table10().total(), 138);
    }

    #[test]
    fn rank_layout_is_consecutive_and_complete() {
        let a = NodeAssignment::case3();
        let mut next = 0;
        for t in 0..7 {
            let r = a.rank_range(t);
            assert_eq!(r.start, next);
            next = r.end;
        }
        assert_eq!(next, a.total());
        assert_eq!(a.driver_rank(), 59);
        assert_eq!(a.world_size(), 60);
    }

    #[test]
    fn task_of_rank_inverts_rank_range() {
        let a = NodeAssignment::case2();
        for r in 0..a.total() {
            let (t, local) = a.task_of_rank(r).unwrap();
            assert!(a.rank_range(t).contains(&r));
            assert_eq!(a.rank_range(t).start + local, r);
        }
        assert!(a.task_of_rank(a.driver_rank()).is_none());
    }

    #[test]
    fn partitions_cover_their_spaces() {
        let p = StapParams::paper();
        let parts = Partitions::new(&p, &NodeAssignment::case1());
        assert_eq!(parts.doppler_k.last().unwrap().end, 512);
        assert_eq!(parts.easy_wt_bins.last().unwrap().end, 72);
        assert_eq!(parts.hard_wt_bins.last().unwrap().end, 56);
        assert_eq!(parts.pc_bins.last().unwrap().end, 128);
        assert_eq!(parts.cfar_bins.last().unwrap().end, 128);
    }
}
