//! Wire messages and the tag scheme.

use stap_core::Detection;
use stap_cube::{CCube, RCube};
use stap_math::CMat;

/// Everything that travels between pipeline ranks.
#[derive(Debug)]
pub enum Msg {
    /// A packed complex cube block (raw CPI slabs, Doppler outputs,
    /// beamformed blocks).
    Cube(CCube),
    /// A packed real cube block (pulse-compressed power).
    Real(RCube),
    /// Weight matrices for a set of bins (easy: one per bin; hard:
    /// `num_segments` per bin, segment-major within each bin).
    Weights(Vec<CMat>),
    /// Detections from a CFAR node (to the driver).
    Detections(Vec<Detection>),
}

/// Logical communication edges, used in tags so messages for different
/// CPIs and edges never cross-match.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Edge {
    /// Driver -> Doppler (raw CPI slabs).
    Input = 0,
    /// Doppler -> easy weight (gathered training cells).
    DopplerToEasyWt = 1,
    /// Doppler -> hard weight.
    DopplerToHardWt = 2,
    /// Doppler -> easy BF (reorganized full-range blocks).
    DopplerToEasyBf = 3,
    /// Doppler -> hard BF.
    DopplerToHardBf = 4,
    /// Easy weight -> easy BF (weight matrices).
    EasyWtToEasyBf = 5,
    /// Hard weight -> hard BF.
    HardWtToHardBf = 6,
    /// Easy BF -> pulse compression.
    EasyBfToPc = 7,
    /// Hard BF -> pulse compression.
    HardBfToPc = 8,
    /// Pulse compression -> CFAR.
    PcToCfar = 9,
    /// CFAR -> driver (detections).
    Output = 10,
}

/// Builds the tag for `edge` at CPI index `cpi`.
pub fn tag(edge: Edge, cpi: usize) -> u64 {
    ((edge as u64) << 48) | cpi as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_unique_per_edge_and_cpi() {
        let mut seen = std::collections::HashSet::new();
        for e in [
            Edge::Input,
            Edge::DopplerToEasyWt,
            Edge::DopplerToHardWt,
            Edge::DopplerToEasyBf,
            Edge::DopplerToHardBf,
            Edge::EasyWtToEasyBf,
            Edge::HardWtToHardBf,
            Edge::EasyBfToPc,
            Edge::HardBfToPc,
            Edge::PcToCfar,
            Edge::Output,
        ] {
            for cpi in [0usize, 1, 2, 1000, 1 << 20] {
                assert!(seen.insert(tag(e, cpi)), "collision at {e:?} cpi {cpi}");
            }
        }
    }
}
