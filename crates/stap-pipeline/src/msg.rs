//! Wire messages and the tag scheme.
//!
//! Every message carries a `seq` (the CPI index it belongs to) and a
//! `degraded` flag in addition to its payload. Tags already encode the
//! CPI, so in a healthy run `seq` is redundant — it exists so the
//! fault-tolerant receive path can *verify* that a matched message
//! really belongs to the CPI being assembled and discard late or
//! duplicated deliveries instead of corrupting double-buffer order.

use stap_core::Detection;
use stap_cube::{CCube, RCube};
use stap_math::CMat;
use std::sync::Arc;

/// One stream's CPI inside a resident-mode slot group: which ingestion
/// stream it belongs to and its per-stream sequence number (the index
/// that drives azimuth revisit and the weight temporal dependency, so
/// cross-stream batching stays bit-identical to per-stream serial runs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubCpi {
    /// Ingestion stream id.
    pub stream: u16,
    /// Per-stream CPI index.
    pub scpi: u32,
}

/// Payload variants that travel between pipeline ranks.
#[derive(Debug, Clone)]
pub enum Payload {
    /// A packed complex cube block (raw CPI slabs, Doppler outputs,
    /// beamformed blocks).
    Cube(CCube),
    /// A packed real cube block (pulse-compressed power).
    Real(RCube),
    /// Weight matrices for a set of bins (easy: one per bin; hard:
    /// `num_segments` per bin, segment-major within each bin).
    Weights(Vec<CMat>),
    /// Detections from a CFAR node (to the driver).
    Detections(Vec<Detection>),
    /// Per-sub-CPI detection lists from a CFAR node in resident mode,
    /// aligned with the slot's [`Msg::group`] order. The second vector
    /// (same alignment) flags sub-CPIs whose power lanes contained
    /// non-finite samples on this node — the serve layer folds it into
    /// per-stream health so a poisoned tenant is attributed, not the
    /// whole slot. Empty when screening is off.
    DetectionsGroup(Vec<Vec<Detection>>, Vec<bool>),
    /// Explicit "this CPI is lost on this edge" marker. Forwarding it
    /// (instead of just not sending) is what keeps the pipeline
    /// *draining* under faults: downstream receivers learn immediately
    /// that the CPI is gone rather than burning their edge timeout.
    Dropped,
    /// Resident-mode end-of-stream sentinel, cascaded down the data
    /// edges so every task loop unwinds after its last slot.
    Shutdown,
}

/// Everything that travels between pipeline ranks.
#[derive(Debug, Clone)]
pub struct Msg {
    /// CPI index this message belongs to (echoes the tag's low bits).
    /// In resident mode this is the *slot* index.
    pub seq: u32,
    /// True when the sender computed this data in a degraded mode
    /// (e.g. beamformed with stale weights). ORed along the data path
    /// so the driver can classify the CPI outcome.
    pub degraded: bool,
    /// Resident-mode slot composition: which `(stream, scpi)` pairs are
    /// coalesced into this slot, in axis-0 concatenation order. Built
    /// once per slot by the driver and shared by `Arc` so forwarding it
    /// along every edge costs one refcount, not an allocation. `None`
    /// in batch mode (the classic one-scenario run).
    pub group: Option<Arc<[SubCpi]>>,
    /// The actual payload.
    pub payload: Payload,
}

impl Msg {
    /// A healthy message for CPI `cpi`.
    pub fn new(cpi: usize, payload: Payload) -> Msg {
        Msg {
            seq: cpi as u32,
            degraded: false,
            group: None,
            payload,
        }
    }

    /// A message carrying an explicit degraded flag.
    pub fn flagged(cpi: usize, degraded: bool, payload: Payload) -> Msg {
        Msg {
            seq: cpi as u32,
            degraded,
            group: None,
            payload,
        }
    }

    /// The drop marker for CPI `cpi`.
    pub fn dropped(cpi: usize) -> Msg {
        Msg::new(cpi, Payload::Dropped)
    }

    /// A resident-mode message for slot `slot` carrying the slot's
    /// stream composition.
    pub fn grouped(slot: usize, group: Arc<[SubCpi]>, payload: Payload) -> Msg {
        Msg {
            seq: slot as u32,
            degraded: false,
            group: Some(group),
            payload,
        }
    }
}

/// Logical communication edges, used in tags so messages for different
/// CPIs and edges never cross-match.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Edge {
    /// Driver -> Doppler (raw CPI slabs).
    Input = 0,
    /// Doppler -> easy weight (gathered training cells).
    DopplerToEasyWt = 1,
    /// Doppler -> hard weight.
    DopplerToHardWt = 2,
    /// Doppler -> easy BF (reorganized full-range blocks).
    DopplerToEasyBf = 3,
    /// Doppler -> hard BF.
    DopplerToHardBf = 4,
    /// Easy weight -> easy BF (weight matrices).
    EasyWtToEasyBf = 5,
    /// Hard weight -> hard BF.
    HardWtToHardBf = 6,
    /// Easy BF -> pulse compression.
    EasyBfToPc = 7,
    /// Hard BF -> pulse compression.
    HardBfToPc = 8,
    /// Pulse compression -> CFAR.
    PcToCfar = 9,
    /// CFAR -> driver (detections).
    Output = 10,
}

/// Number of logical edges (sizes the per-edge health counters).
pub const NUM_EDGES: usize = 11;

/// Human-readable edge names, indexed by [`Edge`] discriminant. Used by
/// the trace exporters and the measured-vs-modeled reconciliation.
pub const EDGE_NAMES: [&str; NUM_EDGES] = [
    "input",
    "doppler->easy_wt",
    "doppler->hard_wt",
    "doppler->easy_bf",
    "doppler->hard_bf",
    "easy_wt->easy_bf",
    "hard_wt->hard_bf",
    "easy_bf->pc",
    "hard_bf->pc",
    "pc->cfar",
    "output",
];

/// Wire-byte attribution for a message, in the *Paragon encoding* the
/// machine model (`stap-machine` / `stap-sim`) prices: 8 bytes per
/// complex sample, 4 bytes per real sample. The host actually moves
/// 16-byte `Complex<f64>` values, but tracing in model units makes the
/// measured-vs-modeled byte reconciliation an exact-match check instead
/// of a constant-factor one.
pub fn wire_bytes(msg: &Msg) -> u64 {
    match &msg.payload {
        Payload::Cube(c) => 8 * c.len() as u64,
        Payload::Real(r) => 4 * r.len() as u64,
        Payload::Weights(ws) => ws.iter().map(|w| 8 * (w.rows() * w.cols()) as u64).sum(),
        // Output-edge payloads are unmodeled (the paper does not price
        // detection reports); 16 bytes per detection keeps the trace
        // honest about non-zero traffic.
        Payload::Detections(ds) => 16 * ds.len() as u64,
        Payload::DetectionsGroup(gs, _) => gs.iter().map(|ds| 16 * ds.len() as u64).sum(),
        Payload::Dropped | Payload::Shutdown => 0,
    }
}

/// Builds the tag for `edge` at CPI index `cpi`.
pub fn tag(edge: Edge, cpi: usize) -> u64 {
    ((edge as u64) << 48) | cpi as u64
}

/// CPI index encoded in a tag.
pub fn cpi_of_tag(t: u64) -> usize {
    (t & ((1u64 << 48) - 1)) as usize
}

/// Edge index encoded in a tag (indexes [`NUM_EDGES`]-sized tables).
pub fn edge_of_tag(t: u64) -> usize {
    (t >> 48) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_unique_per_edge_and_cpi() {
        let mut seen = std::collections::HashSet::new();
        for e in [
            Edge::Input,
            Edge::DopplerToEasyWt,
            Edge::DopplerToHardWt,
            Edge::DopplerToEasyBf,
            Edge::DopplerToHardBf,
            Edge::EasyWtToEasyBf,
            Edge::HardWtToHardBf,
            Edge::EasyBfToPc,
            Edge::HardBfToPc,
            Edge::PcToCfar,
            Edge::Output,
        ] {
            for cpi in [0usize, 1, 2, 1000, 1 << 20] {
                assert!(seen.insert(tag(e, cpi)), "collision at {e:?} cpi {cpi}");
            }
        }
    }

    #[test]
    fn tag_fields_round_trip() {
        for e in [Edge::Input, Edge::EasyWtToEasyBf, Edge::Output] {
            for cpi in [0usize, 7, 4095, (1 << 20) + 3] {
                let t = tag(e, cpi);
                assert_eq!(cpi_of_tag(t), cpi);
                assert_eq!(edge_of_tag(t), e as usize);
            }
        }
    }

    #[test]
    fn msg_constructors_stamp_seq_and_flags() {
        let m = Msg::new(42, Payload::Dropped);
        assert_eq!(m.seq, 42);
        assert!(!m.degraded);
        let m = Msg::flagged(7, true, Payload::Detections(Vec::new()));
        assert!(m.degraded);
        assert!(matches!(Msg::dropped(3).payload, Payload::Dropped));
    }
}
