//! Per-node SPMD loops for the seven pipeline tasks.
//!
//! Senders pack ("data collection and reorganization") and receivers
//! assemble; both sides compute the *same* deterministic index lists
//! from the shared parameters and partitions, so no index metadata
//! travels on the wire. All sends are asynchronous; receives block with
//! (source, tag) matching, and the tag carries the CPI index so
//! successive CPIs never cross-match.
//!
//! Bitwise equivalence with the sequential reference is maintained by
//! assembling exactly the matrices `stap_core` builds, in the same
//! element order, and calling the same kernels.
//!
//! # Steady-state allocation discipline
//!
//! Every per-CPI buffer whose size repeats exactly each cycle is either
//! hoisted out of the CPI loop (assembly cubes, beamforming scratch
//! matrices, FFT/pulse-compression workspaces) or drawn from the shared
//! [`PipelinePools`] recycling pools (every redistribution message).
//! Receivers retire consumed message buffers back into the pool, so
//! after one warmup CPI the hot path performs no heap allocation for
//! kernels or packing — only the small, variable-size weight matrices
//! and detection lists still allocate.

use crate::assignment::{overlap, NodeAssignment, Partitions, *};
use crate::fault::{payload_is_finite, RuntimePolicy};
use crate::metrics::{PipelineHealth, TaskTiming};
use crate::msg::{cpi_of_tag, edge_of_tag, tag, Edge, Msg, Payload};
use stap_core::params::StapParams;
use stap_core::training::{easy_training_cells, hard_training_cells};
use stap_core::weights::hard_constraint;
use stap_core::{
    cfar,
    doppler::DopplerProcessor,
    pulse::{PulseCompressor, PulseScratch},
};
use stap_cube::{CCube, RCube, SharedBufferPool};
use stap_math::fft::FftScratch;
use stap_math::qr::qr_update;
use stap_math::solve::{constrained_lstsq, constrained_lstsq_from_r, normalize_columns};
use stap_math::{CMat, Cx};
use stap_mp::{Comm, RecvError, Tag};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::ops::Range;
use std::time::{Duration, Instant};

/// Process-wide recycling pools for redistribution message buffers.
/// One instance is shared (by reference) across every node thread of a
/// pipeline run; senders draw packing buffers, receivers retire consumed
/// messages, and the global balance keeps the steady state allocation
/// free.
#[derive(Clone, Default)]
pub struct PipelinePools {
    /// Complex blocks: driver input slabs, Doppler and beamform edges.
    pub cx: SharedBufferPool<Cx>,
    /// Real blocks: the pulse compression to CFAR edge.
    pub real: SharedBufferPool<f64>,
}

/// Shared, read-only context every task node gets.
pub struct TaskCtx<'a> {
    /// Algorithm parameters.
    pub params: &'a StapParams,
    /// Node assignment (rank layout).
    pub assign: &'a NodeAssignment,
    /// Data partitions per task.
    pub parts: &'a Partitions,
    /// Steering matrix (`J x M`) per transmit-beam position.
    pub steering: &'a [CMat],
    /// Number of CPIs to process.
    pub num_cpis: usize,
    /// Shared send-buffer recycling pools.
    pub pools: &'a PipelinePools,
    /// Fault-tolerance policy (default: off, zero-overhead path).
    pub policy: &'a RuntimePolicy,
    /// Trace epoch when span tracing is on; `None` (the default) keeps
    /// the task loops on the untraced path — no extra clock reads, no
    /// span allocation.
    pub epoch: Option<Instant>,
}

impl TaskCtx<'_> {
    /// Transmit-beam index of CPI `i` (round-robin revisit).
    fn beam_of(&self, cpi: usize) -> usize {
        cpi % self.steering.len()
    }

    /// Whether weights computed from CPI `cpi` will ever be applied.
    fn weight_target(&self, cpi: usize) -> Option<usize> {
        let t = cpi + self.steering.len();
        (t < self.num_cpis).then_some(t)
    }
}

/// Measures one receive into idle/unpack split.
struct RecvPhase {
    start: Instant,
    idle: f64,
}

impl RecvPhase {
    fn begin() -> Self {
        RecvPhase {
            start: Instant::now(),
            idle: 0.0,
        }
    }

    fn blocking<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let t = Instant::now();
        let out = f();
        self.idle += t.elapsed().as_secs_f64();
        out
    }

    fn finish(self) -> (f64, f64) {
        (self.start.elapsed().as_secs_f64(), self.idle)
    }
}

pub(crate) fn expect_cube(p: Payload) -> CCube {
    match p {
        Payload::Cube(c) => c,
        other => panic!("expected Cube, got {other:?}"),
    }
}

pub(crate) fn expect_real(p: Payload) -> RCube {
    match p {
        Payload::Real(c) => c,
        other => panic!("expected Real, got {other:?}"),
    }
}

pub(crate) fn expect_weights(p: Payload) -> Vec<CMat> {
    match p {
        Payload::Weights(w) => w,
        other => panic!("expected Weights, got {other:?}"),
    }
}

/// What a task's timing loop hands back: per-CPI phase times plus the
/// node's fault-tolerance counters.
#[derive(Debug, Default)]
pub struct TaskReport {
    /// Per-CPI phase timings.
    pub timings: Vec<TaskTiming>,
    /// This node's health counters (all zero without faults).
    pub health: PipelineHealth,
    /// Per-CPI spans (empty unless the run was traced; `Vec::new` does
    /// not allocate, so the untraced path stays allocation-free).
    pub spans: Vec<crate::trace::TaskSpan>,
}

impl TaskReport {
    fn with_capacity(n: usize) -> Self {
        TaskReport {
            timings: Vec::with_capacity(n),
            health: PipelineHealth::default(),
            spans: Vec::new(),
        }
    }

    /// Records one CPI's phase timing, and — when `epoch` is set — the
    /// corresponding absolute span (phase boundaries reconstructed from
    /// the cumulative phase durations; inter-phase gaps on a node are
    /// nanoseconds).
    fn push_cpi(&mut self, epoch: Option<Instant>, cpi: usize, started: Instant, t: TaskTiming) {
        if let Some(e) = epoch {
            let start = started.duration_since(e).as_secs_f64();
            self.spans.push(crate::trace::TaskSpan {
                cpi,
                start,
                recv_end: start + t.recv,
                comp_end: start + t.recv + t.comp,
                send_end: start + t.recv + t.comp + t.send,
            });
        }
        self.timings.push(t);
    }
}

/// Outcome of one fault-aware edge receive.
pub(crate) enum Recvd {
    /// Healthy payload plus the sender's degraded flag.
    Data(Payload, bool),
    /// The input is gone: explicit drop marker, deadline overrun after
    /// retries, a dead peer, or a quarantined (non-finite) payload.
    Gone,
}

/// One receive on edge-tag `t` for CPI `cpi` under `policy`.
///
/// The non-fault-tolerant path is the original blocking receive (an
/// unexpected `Disconnected` still panics, preserving the fail-fast
/// behaviour production relies on). The fault-tolerant path enforces
/// `timeout` per attempt with `policy.max_retries` retries, discards
/// messages whose `seq` does not match `cpi` (late/duplicate CPIs), and
/// screens payloads for non-finite values.
pub(crate) fn recv_msg(
    comm: &mut Comm<Msg>,
    src: usize,
    t: Tag,
    cpi: usize,
    policy: &RuntimePolicy,
    timeout: Duration,
    health: &mut PipelineHealth,
) -> Recvd {
    let e = edge_of_tag(t);
    if !policy.fault_tolerant {
        let m = comm.recv(src, t).unwrap();
        debug_assert_eq!(m.seq as usize, cpi, "tag/seq mismatch on edge {e}");
        return match m.payload {
            Payload::Dropped => Recvd::Gone,
            p => Recvd::Data(p, m.degraded),
        };
    }
    let mut retries = 0u32;
    loop {
        match comm.recv_timeout(src, t, timeout) {
            Ok(m) => {
                if m.seq as usize != cpi {
                    // A late or duplicated CPI matched this tag (possible
                    // only under injection); discard and keep waiting.
                    health.edges[e].late_or_dup += 1;
                    continue;
                }
                if matches!(m.payload, Payload::Dropped) {
                    return Recvd::Gone;
                }
                if policy.screen_nonfinite && !payload_is_finite(&m.payload) {
                    health.edges[e].quarantined += 1;
                    return Recvd::Gone;
                }
                return Recvd::Data(m.payload, m.degraded);
            }
            Err(RecvError::Timeout) => {
                if retries < policy.max_retries {
                    retries += 1;
                    health.edges[e].retries += 1;
                    continue;
                }
                health.edges[e].dropped += 1;
                return Recvd::Gone;
            }
            Err(RecvError::Disconnected) => {
                health.edges[e].dropped += 1;
                return Recvd::Gone;
            }
        }
    }
}

/// End-of-CPI hygiene for fault-tolerant loops: discards every buffered
/// message belonging to CPI `cpi` or earlier — late deliveries the loop
/// gave up on, and duplicate copies of messages already consumed —
/// attributing the discards to their edges. Without this the
/// unexpected-message queue would grow for the rest of the run.
pub(crate) fn purge_late(comm: &mut Comm<Msg>, cpi: usize, health: &mut PipelineHealth) {
    let edges = &mut health.edges;
    comm.purge_pending(|_, t| {
        if cpi_of_tag(t) <= cpi {
            edges[edge_of_tag(t)].late_or_dup += 1;
            false
        } else {
            true
        }
    });
}

/// Samples the receiver-side mailbox and max-merges the currently
/// buffered per-edge depths into `health.max_mailbox_depth`. Called once
/// per CPI at the top of each task loop: one inbox drain plus a bucket
/// walk, no allocation, so the zero-alloc steady state is preserved.
pub(crate) fn sample_mailbox(comm: &mut Comm<Msg>, health: &mut PipelineHealth) {
    let mut depth = [0u64; crate::msg::NUM_EDGES];
    comm.pending_counts(|_, t, n| {
        let e = edge_of_tag(t);
        if e < depth.len() {
            depth[e] += n as u64;
        }
    });
    for (a, b) in health.max_mailbox_depth.iter_mut().zip(depth) {
        *a = (*a).max(b);
    }
}

/// Global training cells for easy weights that fall inside `krange`.
pub(crate) fn easy_cells_in(params: &StapParams, krange: &Range<usize>) -> Vec<usize> {
    easy_training_cells(params)
        .into_iter()
        .filter(|c| krange.contains(c))
        .collect()
}

/// Global training cells for hard segment `seg` inside `krange`.
pub(crate) fn hard_cells_in(params: &StapParams, seg: usize, krange: &Range<usize>) -> Vec<usize> {
    hard_training_cells(params, seg)
        .into_iter()
        .filter(|c| krange.contains(c))
        .collect()
}

/// The Doppler filter processing task (task 0).
pub fn run_doppler(ctx: &TaskCtx, comm: &mut Comm<Msg>, local: usize) -> TaskReport {
    let p = ctx.params;
    let my_k = ctx.parts.doppler_k[local].clone();
    let k0 = my_k.start;
    let proc = DopplerProcessor::new(p);
    let driver = ctx.assign.driver_rank();
    let easy_bins = p.easy_bins();
    let hard_bins = p.hard_bins();
    let pool = &ctx.pools.cx;
    // CPI-invariant packing metadata, computed once.
    let easy_cells = easy_cells_in(p, &my_k);
    let hard_cells: Vec<Vec<usize>> = (0..p.num_segments())
        .map(|s| hard_cells_in(p, s, &my_k))
        .collect();
    let flat_cells: Vec<usize> = hard_cells.iter().flatten().copied().collect();
    // Persistent workspaces: staggered cube and FFT scratch live across
    // CPIs (fully overwritten each cycle).
    let mut stag = CCube::zeros([my_k.len(), 2 * p.j_channels, p.n_pulses]);
    let mut fft_ws = FftScratch::new();
    let mut report = TaskReport::with_capacity(ctx.num_cpis);

    for cpi in 0..ctx.num_cpis {
        comm.fault_checkpoint(cpi as u64);
        sample_mailbox(comm, &mut report.health);
        // --- receive phase -------------------------------------------------
        let mut rp = RecvPhase::begin();
        let cpi_t0 = rp.start;
        let got = rp.blocking(|| {
            recv_msg(
                comm,
                driver,
                tag(Edge::Input, cpi),
                cpi,
                ctx.policy,
                ctx.policy.edge_timeout,
                &mut report.health,
            )
        });
        let (recv, recv_idle) = rp.finish();

        let slab = match got {
            Recvd::Data(p, _) => Some(expect_cube(p)),
            Recvd::Gone => None,
        };

        // --- compute phase -------------------------------------------------
        let t1 = Instant::now();
        if let Some(slab) = &slab {
            proc.process_rows_with(slab, k0, &mut stag, &mut fft_ws);
        }
        let comp = t1.elapsed().as_secs_f64();
        // The consumed input slab refills the send pool.
        if let Some(slab) = slab {
            pool.recycle(slab);
        } else {
            // Input lost: propagate the drop on every out-edge so the
            // rest of the pipeline keeps draining this CPI.
            for (q, _) in ctx.parts.easy_wt_bins.iter().enumerate() {
                let dst = ctx.assign.rank_range(EASY_WT).start + q;
                comm.send(dst, tag(Edge::DopplerToEasyWt, cpi), Msg::dropped(cpi));
            }
            for (q, _) in ctx.parts.hard_wt_bins.iter().enumerate() {
                let dst = ctx.assign.rank_range(HARD_WT).start + q;
                comm.send(dst, tag(Edge::DopplerToHardWt, cpi), Msg::dropped(cpi));
            }
            for (r, _) in ctx.parts.easy_bf_bins.iter().enumerate() {
                let dst = ctx.assign.rank_range(EASY_BF).start + r;
                comm.send(dst, tag(Edge::DopplerToEasyBf, cpi), Msg::dropped(cpi));
            }
            for (r, _) in ctx.parts.hard_bf_bins.iter().enumerate() {
                let dst = ctx.assign.rank_range(HARD_BF).start + r;
                comm.send(dst, tag(Edge::DopplerToHardBf, cpi), Msg::dropped(cpi));
            }
            report.push_cpi(
                ctx.epoch,
                cpi,
                cpi_t0,
                TaskTiming {
                    recv,
                    comp,
                    send: 0.0,
                    recv_idle,
                },
            );
            if ctx.policy.fault_tolerant {
                purge_late(comm, cpi, &mut report.health);
            }
            continue;
        }

        // --- send phase ----------------------------------------------------
        // Each pack below is also attributed as a `Redistribute` span
        // (pack + enqueue) when tracing is on: Doppler's "data
        // collection and reorganization" is the redistribution step the
        // paper singles out, so the trace shows its per-edge cost.
        let t2 = Instant::now();
        // Easy weight: gathered training cells, first window, its bins.
        for (q, bins_idx) in ctx.parts.easy_wt_bins.iter().enumerate() {
            let pack_t0 = comm.trace_now();
            let block = pool.take_cube(
                [bins_idx.len(), easy_cells.len(), p.j_channels],
                |bi, ci, ch| stag[(easy_cells[ci] - k0, ch, easy_bins[bins_idx.start + bi])],
            );
            let bytes = 8 * block.len() as u64;
            let dst = ctx.assign.rank_range(EASY_WT).start + q;
            let t = tag(Edge::DopplerToEasyWt, cpi);
            comm.send(dst, t, Msg::new(cpi, Payload::Cube(block)));
            comm.trace_redistribute(dst, t, bytes, pack_t0);
        }
        // Hard weight: per-segment gathered cells, both windows.
        for (q, bins_idx) in ctx.parts.hard_wt_bins.iter().enumerate() {
            let pack_t0 = comm.trace_now();
            let block = pool.take_cube(
                [bins_idx.len(), flat_cells.len(), 2 * p.j_channels],
                |bi, ci, ch| stag[(flat_cells[ci] - k0, ch, hard_bins[bins_idx.start + bi])],
            );
            let bytes = 8 * block.len() as u64;
            let dst = ctx.assign.rank_range(HARD_WT).start + q;
            let t = tag(Edge::DopplerToHardWt, cpi);
            comm.send(dst, t, Msg::new(cpi, Payload::Cube(block)));
            comm.trace_redistribute(dst, t, bytes, pack_t0);
        }
        // Easy BF: full local range, first window, reorganized to
        // (bin, k, channel) — the Fig. 8 reorganization.
        for (r, bins_idx) in ctx.parts.easy_bf_bins.iter().enumerate() {
            let pack_t0 = comm.trace_now();
            let block = pool.take_cube([bins_idx.len(), my_k.len(), p.j_channels], |bi, kc, ch| {
                stag[(kc, ch, easy_bins[bins_idx.start + bi])]
            });
            let bytes = 8 * block.len() as u64;
            let dst = ctx.assign.rank_range(EASY_BF).start + r;
            let t = tag(Edge::DopplerToEasyBf, cpi);
            comm.send(dst, t, Msg::new(cpi, Payload::Cube(block)));
            comm.trace_redistribute(dst, t, bytes, pack_t0);
        }
        // Hard BF: both windows.
        for (r, bins_idx) in ctx.parts.hard_bf_bins.iter().enumerate() {
            let pack_t0 = comm.trace_now();
            let block = pool.take_cube(
                [bins_idx.len(), my_k.len(), 2 * p.j_channels],
                |bi, kc, ch| stag[(kc, ch, hard_bins[bins_idx.start + bi])],
            );
            let bytes = 8 * block.len() as u64;
            let dst = ctx.assign.rank_range(HARD_BF).start + r;
            let t = tag(Edge::DopplerToHardBf, cpi);
            comm.send(dst, t, Msg::new(cpi, Payload::Cube(block)));
            comm.trace_redistribute(dst, t, bytes, pack_t0);
        }
        let send = t2.elapsed().as_secs_f64();
        report.push_cpi(
            ctx.epoch,
            cpi,
            cpi_t0,
            TaskTiming {
                recv,
                comp,
                send,
                recv_idle,
            },
        );
        if ctx.policy.fault_tolerant {
            purge_late(comm, cpi, &mut report.health);
        }
    }
    report.health.mailbox_over_high_water = comm.mailbox_stats().over_high_water;
    report
}

/// The easy weight computation task (task 1).
pub fn run_easy_weight(ctx: &TaskCtx, comm: &mut Comm<Msg>, local: usize) -> TaskReport {
    let p = ctx.params;
    let bins_idx = ctx.parts.easy_wt_bins[local].clone();
    let p0 = ctx.assign.nodes(DOPPLER);
    let dop0 = ctx.assign.rank_range(DOPPLER).start;
    let constraint = CMat::identity(p.j_channels);
    // History per (beam, local bin): last `easy_history` snapshots.
    let mut history: HashMap<usize, VecDeque<Vec<CMat>>> = HashMap::new();
    let total_cells = easy_training_cells(p).len();
    // Snapshot matrices evicted from the history ring are recycled as
    // the next CPI's receive buffers (they are fully overwritten).
    let mut spare: Option<Vec<CMat>> = None;
    let mut report = TaskReport::with_capacity(ctx.num_cpis);

    for cpi in 0..ctx.num_cpis {
        comm.fault_checkpoint(cpi as u64);
        sample_mailbox(comm, &mut report.health);
        // --- receive: one block per Doppler node ---------------------------
        let mut rp = RecvPhase::begin();
        let cpi_t0 = rp.start;
        let mut snapshots: Vec<CMat> = spare.take().unwrap_or_else(|| {
            (0..bins_idx.len())
                .map(|_| CMat::zeros(total_cells, p.j_channels))
                .collect()
        });
        let mut row = 0usize;
        let mut lost = false;
        for dp in 0..p0 {
            let got = rp.blocking(|| {
                recv_msg(
                    comm,
                    dop0 + dp,
                    tag(Edge::DopplerToEasyWt, cpi),
                    cpi,
                    ctx.policy,
                    ctx.policy.edge_timeout,
                    &mut report.health,
                )
            });
            let block = match got {
                Recvd::Data(p, _) => expect_cube(p),
                Recvd::Gone => {
                    lost = true;
                    continue;
                }
            };
            let cells = block.shape()[1];
            for (bi, snap) in snapshots.iter_mut().enumerate() {
                for ci in 0..cells {
                    for ch in 0..p.j_channels {
                        // Conjugated rows (see stap_core::training).
                        snap[(row + ci, ch)] = block[(bi, ci, ch)].conj();
                    }
                }
            }
            row += cells;
            ctx.pools.cx.recycle(block);
        }
        debug_assert!(lost || row == total_cells);
        let (recv, recv_idle) = rp.finish();

        if lost {
            // Training data incomplete: do not touch the weight history
            // (it still holds the last good snapshots) and tell the
            // beamform nodes to fall back for the target CPI.
            spare = Some(snapshots);
            if let Some(target) = ctx.weight_target(cpi) {
                for (r, bf_bins) in ctx.parts.easy_bf_bins.iter().enumerate() {
                    if overlap(&bins_idx, bf_bins).is_empty() {
                        continue;
                    }
                    let dst = ctx.assign.rank_range(EASY_BF).start + r;
                    comm.send(dst, tag(Edge::EasyWtToEasyBf, target), Msg::dropped(target));
                }
            }
            report.push_cpi(
                ctx.epoch,
                cpi,
                cpi_t0,
                TaskTiming {
                    recv,
                    comp: 0.0,
                    send: 0.0,
                    recv_idle,
                },
            );
            if ctx.policy.fault_tolerant {
                purge_late(comm, cpi, &mut report.health);
            }
            continue;
        }

        // --- compute -------------------------------------------------------
        let t1 = Instant::now();
        let beam = ctx.beam_of(cpi);
        let q = history.entry(beam).or_default();
        q.push_back(snapshots);
        while q.len() > p.easy_history {
            spare = q.pop_front();
        }
        let steering = &ctx.steering[beam];
        let weights: Vec<CMat> = (0..bins_idx.len())
            .map(|bi| {
                let mut stacked = q[0][bi].clone();
                for older in q.iter().skip(1) {
                    stacked = stacked.vstack(&older[bi]);
                }
                let k = mean_abs(&stacked) * p.beam_constraint_wt;
                constrained_lstsq(&stacked, &constraint, k, steering)
            })
            .collect();
        let comp = t1.elapsed().as_secs_f64();

        // --- send: bins overlapping each easy-BF node ----------------------
        let t2 = Instant::now();
        if let Some(target) = ctx.weight_target(cpi) {
            for (r, bf_bins) in ctx.parts.easy_bf_bins.iter().enumerate() {
                let ov = overlap(&bins_idx, bf_bins);
                if ov.is_empty() {
                    continue;
                }
                let w: Vec<CMat> = ov
                    .clone()
                    .map(|b| weights[b - bins_idx.start].clone())
                    .collect();
                let dst = ctx.assign.rank_range(EASY_BF).start + r;
                comm.send(
                    dst,
                    tag(Edge::EasyWtToEasyBf, target),
                    Msg::new(target, Payload::Weights(w)),
                );
            }
        }
        let send = t2.elapsed().as_secs_f64();
        report.push_cpi(
            ctx.epoch,
            cpi,
            cpi_t0,
            TaskTiming {
                recv,
                comp,
                send,
                recv_idle,
            },
        );
        if ctx.policy.fault_tolerant {
            purge_late(comm, cpi, &mut report.health);
        }
    }
    report.health.mailbox_over_high_water = comm.mailbox_stats().over_high_water;
    report
}

/// The hard weight computation task (task 2).
pub fn run_hard_weight(ctx: &TaskCtx, comm: &mut Comm<Msg>, local: usize) -> TaskReport {
    let p = ctx.params;
    let bins_idx = ctx.parts.hard_wt_bins[local].clone();
    let hard_bins = p.hard_bins();
    let p0 = ctx.assign.nodes(DOPPLER);
    let dop0 = ctx.assign.rank_range(DOPPLER).start;
    let jj = 2 * p.j_channels;
    let segs = p.num_segments();
    // R state per (beam, local bin, segment).
    let mut r_state: HashMap<(usize, usize, usize), CMat> = HashMap::new();
    let seg_cells: Vec<usize> = (0..segs).map(|s| hard_training_cells(p, s).len()).collect();
    // Per-sender segment cell counts are CPI-invariant.
    let dp_counts: Vec<Vec<usize>> = (0..p0)
        .map(|dp| {
            let kr = ctx.parts.doppler_k[dp].clone();
            (0..segs).map(|s| hard_cells_in(p, s, &kr).len()).collect()
        })
        .collect();
    // snapshots[bin local][seg] is (cells, 2J), rows in global order;
    // fully overwritten every CPI, so it persists across the loop.
    let mut snapshots: Vec<Vec<CMat>> = (0..bins_idx.len())
        .map(|_| (0..segs).map(|s| CMat::zeros(seg_cells[s], jj)).collect())
        .collect();
    let mut report = TaskReport::with_capacity(ctx.num_cpis);

    for cpi in 0..ctx.num_cpis {
        comm.fault_checkpoint(cpi as u64);
        sample_mailbox(comm, &mut report.health);
        // --- receive -------------------------------------------------------
        let mut rp = RecvPhase::begin();
        let cpi_t0 = rp.start;
        let mut seg_rows = vec![0usize; segs];
        let mut lost = false;
        for (dp, counts) in dp_counts.iter().enumerate() {
            let got = rp.blocking(|| {
                recv_msg(
                    comm,
                    dop0 + dp,
                    tag(Edge::DopplerToHardWt, cpi),
                    cpi,
                    ctx.policy,
                    ctx.policy.edge_timeout,
                    &mut report.health,
                )
            });
            let block = match got {
                Recvd::Data(p, _) => expect_cube(p),
                Recvd::Gone => {
                    lost = true;
                    continue;
                }
            };
            // The sender packed cells segment-major.
            let mut ci = 0usize;
            for (s, &cnt) in counts.iter().enumerate() {
                for c in 0..cnt {
                    for (bi, snap) in snapshots.iter_mut().enumerate() {
                        for ch in 0..jj {
                            snap[s][(seg_rows[s] + c, ch)] = block[(bi, ci + c, ch)].conj();
                        }
                    }
                }
                seg_rows[s] += cnt;
                ci += cnt;
            }
            ctx.pools.cx.recycle(block);
        }
        let (recv, recv_idle) = rp.finish();

        if lost {
            // Incomplete training data: leave the QR recursion state at
            // its last good value and signal fallback to the hard BF
            // nodes for the target CPI.
            if let Some(target) = ctx.weight_target(cpi) {
                for (r, bf_bins) in ctx.parts.hard_bf_bins.iter().enumerate() {
                    if overlap(&bins_idx, bf_bins).is_empty() {
                        continue;
                    }
                    let dst = ctx.assign.rank_range(HARD_BF).start + r;
                    comm.send(dst, tag(Edge::HardWtToHardBf, target), Msg::dropped(target));
                }
            }
            report.push_cpi(
                ctx.epoch,
                cpi,
                cpi_t0,
                TaskTiming {
                    recv,
                    comp: 0.0,
                    send: 0.0,
                    recv_idle,
                },
            );
            if ctx.policy.fault_tolerant {
                purge_late(comm, cpi, &mut report.health);
            }
            continue;
        }

        // --- compute -------------------------------------------------------
        let t1 = Instant::now();
        let beam = ctx.beam_of(cpi);
        let steering = &ctx.steering[beam];
        // weights in bin-major, segment-minor order.
        let mut weights: Vec<CMat> = Vec::with_capacity(bins_idx.len() * segs);
        for bi in 0..bins_idx.len() {
            let bin = hard_bins[bins_idx.start + bi];
            let constraint = hard_constraint(p, bin);
            for (s, snap) in snapshots[bi].iter().enumerate() {
                let r_prev = r_state
                    .entry((beam, bi, s))
                    .or_insert_with(|| CMat::zeros(jj, jj));
                let r_new = qr_update(r_prev, p.forgetting_factor, snap);
                let k = mean_abs(snap) * p.beam_constraint_wt;
                let w = constrained_lstsq_from_r(&r_new, &constraint, k, steering);
                *r_prev = r_new;
                weights.push(w);
            }
        }
        let comp = t1.elapsed().as_secs_f64();

        // --- send ----------------------------------------------------------
        let t2 = Instant::now();
        if let Some(target) = ctx.weight_target(cpi) {
            for (r, bf_bins) in ctx.parts.hard_bf_bins.iter().enumerate() {
                let ov = overlap(&bins_idx, bf_bins);
                if ov.is_empty() {
                    continue;
                }
                let mut w = Vec::with_capacity(ov.len() * segs);
                for b in ov.clone() {
                    let base = (b - bins_idx.start) * segs;
                    w.extend(weights[base..base + segs].iter().cloned());
                }
                let dst = ctx.assign.rank_range(HARD_BF).start + r;
                comm.send(
                    dst,
                    tag(Edge::HardWtToHardBf, target),
                    Msg::new(target, Payload::Weights(w)),
                );
            }
        }
        let send = t2.elapsed().as_secs_f64();
        report.push_cpi(
            ctx.epoch,
            cpi,
            cpi_t0,
            TaskTiming {
                recv,
                comp,
                send,
                recv_idle,
            },
        );
        if ctx.policy.fault_tolerant {
            purge_late(comm, cpi, &mut report.health);
        }
    }
    report.health.mailbox_over_high_water = comm.mailbox_stats().over_high_water;
    report
}

pub(crate) fn mean_abs(m: &CMat) -> f64 {
    if m.rows() == 0 || m.cols() == 0 {
        return 1.0;
    }
    let s: f64 = m.as_slice().iter().map(|x| x.abs()).sum();
    (s / (m.rows() * m.cols()) as f64).max(1e-12)
}

/// Weight-source nodes whose bin range overlaps `my_bins`.
pub(crate) fn weight_sources(
    wt_parts: &[Range<usize>],
    my_bins: &Range<usize>,
    wt_rank0: usize,
) -> Vec<(usize, Range<usize>)> {
    wt_parts
        .iter()
        .enumerate()
        .filter_map(|(q, r)| {
            let ov = overlap(r, my_bins);
            (!ov.is_empty()).then(|| (wt_rank0 + q, ov))
        })
        .collect()
}

/// The easy beamforming task (task 3).
///
/// Degraded mode: when the weight edge overruns its grace deadline (or
/// carries a drop marker), the node beamforms with the *last good
/// weights for this azimuth* — the same matrices the paper would have
/// applied one revisit earlier — and flags its output `degraded`.
pub fn run_easy_bf(ctx: &TaskCtx, comm: &mut Comm<Msg>, local: usize) -> TaskReport {
    let p = ctx.params;
    let bins_idx = ctx.parts.easy_bf_bins[local].clone();
    let easy_bins = p.easy_bins();
    let p0 = ctx.assign.nodes(DOPPLER);
    let dop0 = ctx.assign.rank_range(DOPPLER).start;
    let pool = &ctx.pools.cx;
    let wt_sources = weight_sources(
        &ctx.parts.easy_wt_bins,
        &bins_idx,
        ctx.assign.rank_range(EASY_WT).start,
    );
    // My natural bins, ascending, owned by each PC node (CPI-invariant).
    let pc_mine: Vec<Vec<usize>> = ctx
        .parts
        .pc_bins
        .iter()
        .map(|pc_bins| {
            bins_idx
                .clone()
                .filter(|&b| pc_bins.contains(&easy_bins[b]))
                .collect()
        })
        .collect();
    // Persistent assembly cube, output cube and beamforming scratch
    // (all fully overwritten each CPI).
    let mut data = CCube::zeros([bins_idx.len(), p.k_range, p.j_channels]);
    let mut out = CCube::zeros([bins_idx.len(), p.m_beams, p.k_range]);
    let mut slab = CMat::zeros(p.j_channels, p.k_range);
    let mut y = CMat::zeros(p.m_beams, p.k_range);
    // Last-good weights per azimuth (fault-tolerant runs only): the
    // stale-weight fallback source. Guaranteed populated for a beam by
    // the time it is needed because each azimuth's first visit takes
    // the quiescent path below.
    let mut last_good: HashMap<usize, Vec<CMat>> = HashMap::new();
    let mut report = TaskReport::with_capacity(ctx.num_cpis);

    for cpi in 0..ctx.num_cpis {
        comm.fault_checkpoint(cpi as u64);
        sample_mailbox(comm, &mut report.health);
        let beam = ctx.beam_of(cpi);
        // --- receive -------------------------------------------------------
        let mut rp = RecvPhase::begin();
        let cpi_t0 = rp.start;
        let mut data_lost = false;
        for dp in 0..p0 {
            let got = rp.blocking(|| {
                recv_msg(
                    comm,
                    dop0 + dp,
                    tag(Edge::DopplerToEasyBf, cpi),
                    cpi,
                    ctx.policy,
                    ctx.policy.edge_timeout,
                    &mut report.health,
                )
            });
            match got {
                Recvd::Data(pl, _) => {
                    let block = expect_cube(pl);
                    let k0 = ctx.parts.doppler_k[dp].start;
                    data.place([0, k0, 0], &block);
                    pool.recycle(block);
                }
                Recvd::Gone => data_lost = true,
            }
        }
        if data_lost {
            // The data cube is incomplete: drop this CPI end-to-end.
            // Weight messages for this CPI (if any) are shed by the
            // end-of-CPI purge.
            let (recv, recv_idle) = rp.finish();
            for (t, _) in pc_mine.iter().enumerate() {
                let dst = ctx.assign.rank_range(PC).start + t;
                comm.send(dst, tag(Edge::EasyBfToPc, cpi), Msg::dropped(cpi));
            }
            report.push_cpi(
                ctx.epoch,
                cpi,
                cpi_t0,
                TaskTiming {
                    recv,
                    comp: 0.0,
                    send: 0.0,
                    recv_idle,
                },
            );
            if ctx.policy.fault_tolerant {
                purge_late(comm, cpi, &mut report.health);
            }
            continue;
        }
        // Weights: quiescent for the first visit of each azimuth.
        let mut stale = false;
        let weights: Vec<CMat> = if cpi < ctx.steering.len() {
            let q = normalize_columns(ctx.steering[beam].clone());
            let w = vec![q; bins_idx.len()];
            if ctx.policy.fault_tolerant {
                last_good.insert(beam, w.clone());
            }
            w
        } else {
            let mut per_bin: Vec<Option<CMat>> = vec![None; bins_idx.len()];
            for (src, ov) in &wt_sources {
                let got = rp.blocking(|| {
                    recv_msg(
                        comm,
                        *src,
                        tag(Edge::EasyWtToEasyBf, cpi),
                        cpi,
                        ctx.policy,
                        ctx.policy.weight_grace,
                        &mut report.health,
                    )
                });
                match got {
                    Recvd::Data(pl, _) => {
                        let w = expect_weights(pl);
                        for (i, b) in ov.clone().enumerate() {
                            per_bin[b - bins_idx.start] = Some(w[i].clone());
                        }
                    }
                    Recvd::Gone => stale = true,
                }
            }
            if stale {
                // Fall back to the last good weights for this azimuth —
                // the paper already applies weights one revisit late
                // (TD(1,3)); this widens the gap by one more revisit.
                report.health.edges[Edge::EasyWtToEasyBf as usize].stale_weights += 1;
                last_good.get(&beam).cloned().unwrap_or_else(|| {
                    vec![normalize_columns(ctx.steering[beam].clone()); bins_idx.len()]
                })
            } else {
                let w: Vec<CMat> = per_bin
                    .into_iter()
                    .map(|w| w.expect("missing weights"))
                    .collect();
                if ctx.policy.fault_tolerant {
                    last_good.insert(beam, w.clone());
                }
                w
            }
        };
        let (recv, recv_idle) = rp.finish();

        // --- compute -------------------------------------------------------
        let t1 = Instant::now();
        for bi in 0..bins_idx.len() {
            // Assemble (J, K) exactly as the sequential easy_bin_data.
            slab.fill_from_fn(|ch, kc| data[(bi, kc, ch)]);
            weights[bi].hermitian_matmul_into(&slab, &mut y);
            for m in 0..p.m_beams {
                out.lane_mut(bi, m).copy_from_slice(y.row(m));
            }
        }
        let comp = t1.elapsed().as_secs_f64();

        // --- send: natural-bin overlap with each PC node --------------------
        let t2 = Instant::now();
        for (t, mine) in pc_mine.iter().enumerate() {
            let block = pool.take_cube([mine.len(), p.m_beams, p.k_range], |i, m, kc| {
                out[(mine[i] - bins_idx.start, m, kc)]
            });
            let dst = ctx.assign.rank_range(PC).start + t;
            comm.send(
                dst,
                tag(Edge::EasyBfToPc, cpi),
                Msg::flagged(cpi, stale, Payload::Cube(block)),
            );
        }
        let send = t2.elapsed().as_secs_f64();
        report.push_cpi(
            ctx.epoch,
            cpi,
            cpi_t0,
            TaskTiming {
                recv,
                comp,
                send,
                recv_idle,
            },
        );
        if ctx.policy.fault_tolerant {
            purge_late(comm, cpi, &mut report.health);
        }
    }
    report.health.mailbox_over_high_water = comm.mailbox_stats().over_high_water;
    report
}

/// The hard beamforming task (task 4). Same degraded mode as
/// [`run_easy_bf`], with per-(bin, segment) weight sets.
pub fn run_hard_bf(ctx: &TaskCtx, comm: &mut Comm<Msg>, local: usize) -> TaskReport {
    let p = ctx.params;
    let bins_idx = ctx.parts.hard_bf_bins[local].clone();
    let hard_bins = p.hard_bins();
    let p0 = ctx.assign.nodes(DOPPLER);
    let dop0 = ctx.assign.rank_range(DOPPLER).start;
    let jj = 2 * p.j_channels;
    let segs = p.num_segments();
    let pool = &ctx.pools.cx;
    let wt_sources = weight_sources(
        &ctx.parts.hard_wt_bins,
        &bins_idx,
        ctx.assign.rank_range(HARD_WT).start,
    );
    let pc_mine: Vec<Vec<usize>> = ctx
        .parts
        .pc_bins
        .iter()
        .map(|pc_bins| {
            bins_idx
                .clone()
                .filter(|&b| pc_bins.contains(&hard_bins[b]))
                .collect()
        })
        .collect();
    // Persistent assembly/output cubes and per-segment scratch matrices.
    let seg_ranges: Vec<Range<usize>> = (0..segs).map(|s| p.segment_range(s)).collect();
    let mut data = CCube::zeros([bins_idx.len(), p.k_range, jj]);
    let mut out = CCube::zeros([bins_idx.len(), p.m_beams, p.k_range]);
    let mut slabs: Vec<CMat> = seg_ranges
        .iter()
        .map(|r| CMat::zeros(jj, r.len()))
        .collect();
    let mut ys: Vec<CMat> = seg_ranges
        .iter()
        .map(|r| CMat::zeros(p.m_beams, r.len()))
        .collect();
    // Last-good per-(bin, segment) weights per azimuth (stale fallback).
    let mut last_good: HashMap<usize, Vec<Vec<CMat>>> = HashMap::new();
    let mut report = TaskReport::with_capacity(ctx.num_cpis);

    // Quiescent weights for `beam` (each azimuth's first visit, and the
    // fallback of last resort).
    let quiescent = |beam: usize| -> Vec<Vec<CMat>> {
        bins_idx
            .clone()
            .map(|b| {
                let bin = hard_bins[b];
                let phase = Cx::cis(
                    2.0 * std::f64::consts::PI * bin as f64 * p.stagger as f64 / p.n_pulses as f64,
                );
                let s = &ctx.steering[beam];
                let w = CMat::from_fn(jj, p.m_beams, |r, c| {
                    if r < p.j_channels {
                        s[(r, c)]
                    } else {
                        s[(r - p.j_channels, c)] * phase
                    }
                });
                vec![normalize_columns(w); segs]
            })
            .collect()
    };

    for cpi in 0..ctx.num_cpis {
        comm.fault_checkpoint(cpi as u64);
        sample_mailbox(comm, &mut report.health);
        let beam = ctx.beam_of(cpi);
        // --- receive -------------------------------------------------------
        let mut rp = RecvPhase::begin();
        let cpi_t0 = rp.start;
        let mut data_lost = false;
        for dp in 0..p0 {
            let got = rp.blocking(|| {
                recv_msg(
                    comm,
                    dop0 + dp,
                    tag(Edge::DopplerToHardBf, cpi),
                    cpi,
                    ctx.policy,
                    ctx.policy.edge_timeout,
                    &mut report.health,
                )
            });
            match got {
                Recvd::Data(pl, _) => {
                    let block = expect_cube(pl);
                    let k0 = ctx.parts.doppler_k[dp].start;
                    data.place([0, k0, 0], &block);
                    pool.recycle(block);
                }
                Recvd::Gone => data_lost = true,
            }
        }
        if data_lost {
            let (recv, recv_idle) = rp.finish();
            for (t, _) in pc_mine.iter().enumerate() {
                let dst = ctx.assign.rank_range(PC).start + t;
                comm.send(dst, tag(Edge::HardBfToPc, cpi), Msg::dropped(cpi));
            }
            report.push_cpi(
                ctx.epoch,
                cpi,
                cpi_t0,
                TaskTiming {
                    recv,
                    comp: 0.0,
                    send: 0.0,
                    recv_idle,
                },
            );
            if ctx.policy.fault_tolerant {
                purge_late(comm, cpi, &mut report.health);
            }
            continue;
        }
        let mut stale = false;
        let weights: Vec<Vec<CMat>> = if cpi < ctx.steering.len() {
            let w = quiescent(beam);
            if ctx.policy.fault_tolerant {
                last_good.insert(beam, w.clone());
            }
            w
        } else {
            let mut per_bin: Vec<Option<Vec<CMat>>> = vec![None; bins_idx.len()];
            for (src, ov) in &wt_sources {
                let got = rp.blocking(|| {
                    recv_msg(
                        comm,
                        *src,
                        tag(Edge::HardWtToHardBf, cpi),
                        cpi,
                        ctx.policy,
                        ctx.policy.weight_grace,
                        &mut report.health,
                    )
                });
                match got {
                    Recvd::Data(pl, _) => {
                        let w = expect_weights(pl);
                        for (i, b) in ov.clone().enumerate() {
                            per_bin[b - bins_idx.start] =
                                Some(w[i * segs..(i + 1) * segs].to_vec());
                        }
                    }
                    Recvd::Gone => stale = true,
                }
            }
            if stale {
                report.health.edges[Edge::HardWtToHardBf as usize].stale_weights += 1;
                last_good
                    .get(&beam)
                    .cloned()
                    .unwrap_or_else(|| quiescent(beam))
            } else {
                let w: Vec<Vec<CMat>> = per_bin
                    .into_iter()
                    .map(|w| w.expect("missing weights"))
                    .collect();
                if ctx.policy.fault_tolerant {
                    last_good.insert(beam, w.clone());
                }
                w
            }
        };
        let (recv, recv_idle) = rp.finish();

        // --- compute -------------------------------------------------------
        let t1 = Instant::now();
        for bi in 0..bins_idx.len() {
            for seg in 0..segs {
                let r = &seg_ranges[seg];
                slabs[seg].fill_from_fn(|ch, kc| data[(bi, r.start + kc, ch)]);
                weights[bi][seg].hermitian_matmul_into(&slabs[seg], &mut ys[seg]);
                for m in 0..p.m_beams {
                    out.lane_mut(bi, m)[r.clone()].copy_from_slice(ys[seg].row(m));
                }
            }
        }
        let comp = t1.elapsed().as_secs_f64();

        // --- send ----------------------------------------------------------
        let t2 = Instant::now();
        for (t, mine) in pc_mine.iter().enumerate() {
            let block = pool.take_cube([mine.len(), p.m_beams, p.k_range], |i, m, kc| {
                out[(mine[i] - bins_idx.start, m, kc)]
            });
            let dst = ctx.assign.rank_range(PC).start + t;
            comm.send(
                dst,
                tag(Edge::HardBfToPc, cpi),
                Msg::flagged(cpi, stale, Payload::Cube(block)),
            );
        }
        let send = t2.elapsed().as_secs_f64();
        report.push_cpi(
            ctx.epoch,
            cpi,
            cpi_t0,
            TaskTiming {
                recv,
                comp,
                send,
                recv_idle,
            },
        );
        if ctx.policy.fault_tolerant {
            purge_late(comm, cpi, &mut report.health);
        }
    }
    report.health.mailbox_over_high_water = comm.mailbox_stats().over_high_water;
    report
}

/// The pulse compression task (task 5).
pub fn run_pc(ctx: &TaskCtx, comm: &mut Comm<Msg>, local: usize) -> TaskReport {
    let p = ctx.params;
    let my_bins = ctx.parts.pc_bins[local].clone();
    let easy_bins = p.easy_bins();
    let hard_bins = p.hard_bins();
    let compressor = PulseCompressor::new(p);
    let mut report = TaskReport::with_capacity(ctx.num_cpis);

    // Which (sender rank, natural-bin list) pairs feed me.
    let mut feeders: Vec<(usize, Vec<usize>)> = Vec::new();
    for (r, idx) in ctx.parts.easy_bf_bins.iter().enumerate() {
        let bins: Vec<usize> = idx
            .clone()
            .map(|b| easy_bins[b])
            .filter(|b| my_bins.contains(b))
            .collect();
        feeders.push((ctx.assign.rank_range(EASY_BF).start + r, bins));
    }
    for (r, idx) in ctx.parts.hard_bf_bins.iter().enumerate() {
        let bins: Vec<usize> = idx
            .clone()
            .map(|b| hard_bins[b])
            .filter(|b| my_bins.contains(b))
            .collect();
        feeders.push((ctx.assign.rank_range(HARD_BF).start + r, bins));
    }
    let easy_edge = |src: usize| src < ctx.assign.rank_range(HARD_BF).start;
    // CFAR overlap ranges are CPI-invariant.
    let cfar_ov: Vec<Range<usize>> = ctx
        .parts
        .cfar_bins
        .iter()
        .map(|c| overlap(&my_bins, c))
        .collect();
    // Persistent assembly cube, power cube and compression workspace.
    let mut data = CCube::zeros([my_bins.len(), p.m_beams, p.k_range]);
    let mut power = RCube::zeros([my_bins.len(), p.m_beams, p.k_range]);
    let mut pc_ws = PulseScratch::new();

    for cpi in 0..ctx.num_cpis {
        comm.fault_checkpoint(cpi as u64);
        sample_mailbox(comm, &mut report.health);
        // --- receive -------------------------------------------------------
        let mut rp = RecvPhase::begin();
        let cpi_t0 = rp.start;
        let mut lost = false;
        let mut degraded = false;
        for (src, bins) in &feeders {
            let edge = if easy_edge(*src) {
                Edge::EasyBfToPc
            } else {
                Edge::HardBfToPc
            };
            let got = rp.blocking(|| {
                recv_msg(
                    comm,
                    *src,
                    tag(edge, cpi),
                    cpi,
                    ctx.policy,
                    ctx.policy.edge_timeout,
                    &mut report.health,
                )
            });
            let block = match got {
                Recvd::Data(pl, d) => {
                    degraded |= d;
                    expect_cube(pl)
                }
                Recvd::Gone => {
                    lost = true;
                    continue;
                }
            };
            debug_assert_eq!(block.shape()[0], bins.len());
            for (i, &b) in bins.iter().enumerate() {
                for m in 0..p.m_beams {
                    data.lane_mut(b - my_bins.start, m)
                        .copy_from_slice(block.lane(i, m));
                }
            }
            ctx.pools.cx.recycle(block);
        }
        let (recv, recv_idle) = rp.finish();

        if lost {
            // At least one beamformed block is gone: the assembled cube
            // would be a mix of CPIs, so drop this CPI downstream.
            for u in 0..ctx.parts.cfar_bins.len() {
                let dst = ctx.assign.rank_range(CFAR).start + u;
                comm.send(dst, tag(Edge::PcToCfar, cpi), Msg::dropped(cpi));
            }
            report.push_cpi(
                ctx.epoch,
                cpi,
                cpi_t0,
                TaskTiming {
                    recv,
                    comp: 0.0,
                    send: 0.0,
                    recv_idle,
                },
            );
            if ctx.policy.fault_tolerant {
                purge_late(comm, cpi, &mut report.health);
            }
            continue;
        }

        // --- compute -------------------------------------------------------
        let t1 = Instant::now();
        compressor.process_into_with(&data, &mut power, &mut pc_ws);
        let comp = t1.elapsed().as_secs_f64();

        // --- send ----------------------------------------------------------
        let t2 = Instant::now();
        for (u, ov) in cfar_ov.iter().enumerate() {
            let block = ctx
                .pools
                .real
                .take_cube([ov.len(), p.m_beams, p.k_range], |i, m, kc| {
                    power[(ov.start + i - my_bins.start, m, kc)]
                });
            let dst = ctx.assign.rank_range(CFAR).start + u;
            comm.send(
                dst,
                tag(Edge::PcToCfar, cpi),
                Msg::flagged(cpi, degraded, Payload::Real(block)),
            );
        }
        let send = t2.elapsed().as_secs_f64();
        report.push_cpi(
            ctx.epoch,
            cpi,
            cpi_t0,
            TaskTiming {
                recv,
                comp,
                send,
                recv_idle,
            },
        );
        if ctx.policy.fault_tolerant {
            purge_late(comm, cpi, &mut report.health);
        }
    }
    report.health.mailbox_over_high_water = comm.mailbox_stats().over_high_water;
    report
}

/// The CFAR task (task 6).
pub fn run_cfar(ctx: &TaskCtx, comm: &mut Comm<Msg>, local: usize) -> TaskReport {
    let p = ctx.params;
    let my_bins = ctx.parts.cfar_bins[local].clone();
    let driver = ctx.assign.driver_rank();
    // PC nodes that overlap my bins, with the overlap ranges.
    let feeders: Vec<(usize, Range<usize>)> = ctx
        .parts
        .pc_bins
        .iter()
        .enumerate()
        .map(|(t, r)| (ctx.assign.rank_range(PC).start + t, overlap(r, &my_bins)))
        .collect();
    // Persistent power assembly cube (fully overwritten each CPI) and
    // CFAR workspace: the detection list is reserved once, so the
    // steady-state CFAR round performs no heap allocation (the handoff
    // at the send boundary swaps in an equally-reserved buffer).
    let mut power = RCube::zeros([my_bins.len(), p.m_beams, p.k_range]);
    let mut scratch = cfar::CfarScratch::for_task(p, my_bins.len());
    let mut report = TaskReport::with_capacity(ctx.num_cpis);

    for cpi in 0..ctx.num_cpis {
        comm.fault_checkpoint(cpi as u64);
        sample_mailbox(comm, &mut report.health);
        // --- receive -------------------------------------------------------
        let mut rp = RecvPhase::begin();
        let cpi_t0 = rp.start;
        let mut lost = false;
        let mut degraded = false;
        for (src, ov) in &feeders {
            let got = rp.blocking(|| {
                recv_msg(
                    comm,
                    *src,
                    tag(Edge::PcToCfar, cpi),
                    cpi,
                    ctx.policy,
                    ctx.policy.edge_timeout,
                    &mut report.health,
                )
            });
            let block = match got {
                Recvd::Data(pl, d) => {
                    degraded |= d;
                    expect_real(pl)
                }
                Recvd::Gone => {
                    lost = true;
                    continue;
                }
            };
            debug_assert_eq!(block.shape()[0], ov.len());
            if !ov.is_empty() {
                power.place([ov.start - my_bins.start, 0, 0], &block);
            }
            ctx.pools.real.recycle(block);
        }
        let (recv, recv_idle) = rp.finish();

        if lost {
            // Report the loss to the driver so it can classify the CPI
            // as dropped instead of waiting on detections that will
            // never come.
            comm.send(driver, tag(Edge::Output, cpi), Msg::dropped(cpi));
            report.push_cpi(
                ctx.epoch,
                cpi,
                cpi_t0,
                TaskTiming {
                    recv,
                    comp: 0.0,
                    send: 0.0,
                    recv_idle,
                },
            );
            if ctx.policy.fault_tolerant {
                purge_late(comm, cpi, &mut report.health);
            }
            continue;
        }

        // --- compute -------------------------------------------------------
        let t1 = Instant::now();
        scratch.begin_cpi();
        for bi in 0..my_bins.len() {
            for m in 0..p.m_beams {
                cfar::cfar_lane(
                    p,
                    power.lane(bi, m),
                    my_bins.start + bi,
                    m,
                    &mut scratch.detections,
                );
            }
        }
        let comp = t1.elapsed().as_secs_f64();

        // --- send ----------------------------------------------------------
        let t2 = Instant::now();
        comm.send(
            driver,
            tag(Edge::Output, cpi),
            Msg::flagged(cpi, degraded, Payload::Detections(scratch.take())),
        );
        let send = t2.elapsed().as_secs_f64();
        report.push_cpi(
            ctx.epoch,
            cpi,
            cpi_t0,
            TaskTiming {
                recv,
                comp,
                send,
                recv_idle,
            },
        );
        if ctx.policy.fault_tolerant {
            purge_late(comm, cpi, &mut report.health);
        }
    }
    report.health.mailbox_over_high_water = comm.mailbox_stats().over_high_water;
    report
}

#[cfg(test)]
mod seq_tests {
    use super::*;
    use stap_mp::World;

    fn det_msg(cpi: usize) -> Msg {
        Msg::new(cpi, Payload::Detections(Vec::new()))
    }

    /// A message whose `seq` disagrees with the CPI being assembled
    /// (a late or duplicated delivery that landed on a reused tag) is
    /// discarded and counted, and the receive keeps waiting for the
    /// real message.
    #[test]
    fn out_of_order_seq_is_discarded_then_real_message_received() {
        let world: World<Msg> = World::new(2);
        let policy = RuntimePolicy::fault_tolerant();
        let counts = world.run_collect(move |mut comm| {
            if comm.rank() == 0 {
                // A stale CPI-4 message mislabeled onto CPI 5's tag,
                // then the genuine CPI-5 message.
                comm.send(
                    1,
                    tag(Edge::Input, 5),
                    Msg::flagged(4, false, Payload::Detections(Vec::new())),
                );
                comm.send(1, tag(Edge::Input, 5), det_msg(5));
                0
            } else {
                let mut health = PipelineHealth::default();
                let got = recv_msg(
                    &mut comm,
                    0,
                    tag(Edge::Input, 5),
                    5,
                    &policy,
                    Duration::from_secs(2),
                    &mut health,
                );
                assert!(matches!(got, Recvd::Data(Payload::Detections(_), false)));
                health.edges[Edge::Input as usize].late_or_dup
            }
        });
        assert_eq!(counts[1], 1, "stale seq not counted");
    }

    /// Duplicated or late messages left in the mailbox are shed by the
    /// end-of-CPI purge; messages for future CPIs survive it.
    #[test]
    fn purge_discards_current_and_earlier_cpis_only() {
        let world: World<Msg> = World::new(2);
        let policy = RuntimePolicy::fault_tolerant();
        let results = world.run_collect(move |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, tag(Edge::Input, 0), det_msg(0)); // duplicate of a consumed CPI
                comm.send(1, tag(Edge::Input, 1), det_msg(1)); // late for the current CPI
                comm.send(1, tag(Edge::Input, 2), det_msg(2)); // next CPI: must survive
                (0, true)
            } else {
                let mut health = PipelineHealth::default();
                // Give all three sends time to land in the mailbox.
                std::thread::sleep(Duration::from_millis(50));
                purge_late(&mut comm, 1, &mut health);
                // CPI 2 must still be receivable after the purge.
                let got = recv_msg(
                    &mut comm,
                    0,
                    tag(Edge::Input, 2),
                    2,
                    &policy,
                    Duration::from_secs(2),
                    &mut health,
                );
                let survived = matches!(got, Recvd::Data(Payload::Detections(_), _));
                (health.edges[Edge::Input as usize].late_or_dup, survived)
            }
        });
        let (purged, survived) = results[1];
        assert!(purged >= 1, "nothing was purged");
        assert!(survived, "future CPI was wrongly purged");
    }
}
