//! Measured pipeline timelines: task spans, comm spans, exporters.
//!
//! When [`crate::ParallelStap::with_tracing`] is enabled, every task
//! node records one [`TaskSpan`] per CPI (receive/compute/send
//! boundaries, mirroring the simulator's `stap_sim::trace::Interval`)
//! and every rank's communicator records send/recv/wait/redistribute
//! events with `(peer, tag, bytes)` attribution. [`PipelineTrace`]
//! merges both into one timeline, which this module exports three ways:
//!
//! * [`chrome_trace_json`] — Chrome trace-event JSON, loadable in
//!   `chrome://tracing` or Perfetto (`ui.perfetto.dev`),
//! * [`render_breakdown`] — a flamegraph-style per-task text view plus
//!   paper-style tables (per-task compute, per-edge communication, CPI
//!   throughput and end-to-end latency — the Tables 2–8 shape),
//! * [`TraceStats`] — the per-edge message/byte aggregation the
//!   measured-vs-modeled reconciliation in `stap-sim` consumes.

use crate::assignment::{NodeAssignment, TASK_NAMES};
use crate::metrics::{PipelineTimings, TaskTiming};
use crate::msg::{cpi_of_tag, edge_of_tag, EDGE_NAMES, NUM_EDGES};
use stap_mp::{RankTrace, TraceKind};
use stap_util::Json;
use std::fmt::Write as _;

/// One task node's receive/compute/send span for one CPI, in seconds
/// since the trace epoch. Field layout mirrors
/// `stap_sim::trace::Interval` so measured and modeled timelines
/// compare one-to-one.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskSpan {
    /// CPI index.
    pub cpi: usize,
    /// Span start (receive begin).
    pub start: f64,
    /// Receive end / compute begin.
    pub recv_end: f64,
    /// Compute end / send begin.
    pub comp_end: f64,
    /// Send end.
    pub send_end: f64,
}

/// A [`TaskSpan`] placed on the task grid.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskInterval {
    /// Task index (paper numbering, 0..7).
    pub task: usize,
    /// Node within the task.
    pub node: usize,
    /// The span itself.
    pub span: TaskSpan,
}

/// Driver-side CPI lifetime marker.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpiMark {
    /// CPI index.
    pub cpi: usize,
    /// When the driver injected the CPI's input slabs.
    pub inject_s: f64,
    /// When the driver collected the CPI's detections.
    pub complete_s: f64,
}

/// The unified measured timeline of one traced pipeline run.
#[derive(Clone, Debug)]
pub struct PipelineTrace {
    /// Node assignment of the run (maps ranks to (task, node)).
    pub assign: NodeAssignment,
    /// Number of CPIs processed.
    pub num_cpis: usize,
    /// Every task node's per-CPI spans.
    pub tasks: Vec<TaskInterval>,
    /// Every rank's communication events (from the `stap-mp` recorder).
    pub comm: Vec<RankTrace>,
    /// Driver-side CPI inject/complete markers.
    pub cpis: Vec<CpiMark>,
}

/// Per-edge communication aggregation of a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EdgeStat {
    /// Messages sent on this edge over the whole run.
    pub msgs: u64,
    /// Total wire bytes sent on this edge over the whole run.
    pub total_bytes: u64,
    /// Steady-state per-CPI wire bytes: the maximum over CPIs of the
    /// edge's per-CPI byte sum (warmup/drain CPIs carry partial
    /// traffic; the steady state carries the full redistribution).
    pub bytes_per_cpi: u64,
    /// Total seconds receivers spent inside receives on this edge.
    pub recv_s: f64,
}

/// Aggregated per-edge statistics (the reconciliation input).
#[derive(Clone, Debug)]
pub struct TraceStats {
    /// Per-edge stats, indexed by `Edge as usize`.
    pub edges: [EdgeStat; NUM_EDGES],
}

impl TraceStats {
    /// Aggregates the comm events of `trace`.
    pub fn from_trace(trace: &PipelineTrace) -> TraceStats {
        let mut edges = [EdgeStat::default(); NUM_EDGES];
        // bytes per (edge, cpi), to find the steady-state maximum.
        let mut per_cpi: Vec<std::collections::HashMap<usize, u64>> =
            vec![std::collections::HashMap::new(); NUM_EDGES];
        for rt in &trace.comm {
            for ev in &rt.events {
                let e = edge_of_tag(ev.tag);
                if e >= NUM_EDGES {
                    continue; // barrier or out-of-scheme tag
                }
                match ev.kind {
                    TraceKind::Send => {
                        edges[e].msgs += 1;
                        edges[e].total_bytes += ev.bytes;
                        *per_cpi[e].entry(cpi_of_tag(ev.tag)).or_insert(0) += ev.bytes;
                    }
                    TraceKind::Recv => edges[e].recv_s += ev.end_s - ev.start_s,
                    TraceKind::Wait | TraceKind::Redistribute => {}
                }
            }
        }
        for (e, m) in per_cpi.iter().enumerate() {
            edges[e].bytes_per_cpi = m.values().copied().max().unwrap_or(0);
        }
        TraceStats { edges }
    }

    /// Steady-state per-CPI bytes per edge (reconciliation input).
    pub fn bytes_per_cpi(&self) -> [u64; NUM_EDGES] {
        let mut out = [0u64; NUM_EDGES];
        for (o, e) in out.iter_mut().zip(&self.edges) {
            *o = e.bytes_per_cpi;
        }
        out
    }
}

const US: f64 = 1e6; // seconds -> microseconds (Chrome trace unit)

/// Chrome trace-event JSON for `trace`.
///
/// Layout: one *process* per task (pid 0–6, named from
/// [`TASK_NAMES`]) plus pid 7 for the driver. Task phases (recv /
/// compute / send) are `ph: "X"` complete events on `tid = node`;
/// communication events ride on `tid = 1000 + node` so they render as a
/// separate track under the same process; driver CPI lifetimes are
/// `cpi N` spans on pid 7. Load the file in `chrome://tracing` or
/// Perfetto.
pub fn chrome_trace_json(trace: &PipelineTrace) -> Json {
    let mut events: Vec<Json> = Vec::new();
    // Process-name metadata: seven tasks + the driver.
    for (t, name) in TASK_NAMES.iter().enumerate() {
        events.push(Json::obj([
            ("name", Json::Str("process_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::Num(t as f64)),
            (
                "args",
                Json::obj([("name", Json::Str(format!("task {t} {name}")))]),
            ),
        ]));
    }
    events.push(Json::obj([
        ("name", Json::Str("process_name".into())),
        ("ph", Json::Str("M".into())),
        ("pid", Json::Num(7.0)),
        ("args", Json::obj([("name", Json::Str("driver".into()))])),
    ]));
    // Task phase spans.
    for iv in &trace.tasks {
        let s = iv.span;
        for (name, t0, t1) in [
            ("recv", s.start, s.recv_end),
            ("compute", s.recv_end, s.comp_end),
            ("send", s.comp_end, s.send_end),
        ] {
            if t1 < t0 {
                continue;
            }
            events.push(complete_event(
                name,
                "task",
                iv.task,
                iv.node as f64,
                t0,
                t1,
                [("cpi", Json::Num(s.cpi as f64))],
            ));
        }
    }
    // Communication events, attributed to the owning task's process.
    for rt in &trace.comm {
        let (pid, node) = match trace.assign.task_of_rank(rt.rank) {
            Some((t, n)) => (t, n),
            None => (7, 0), // driver
        };
        for ev in &rt.events {
            let e = edge_of_tag(ev.tag);
            let edge = if e < NUM_EDGES {
                EDGE_NAMES[e]
            } else {
                "barrier"
            };
            events.push(complete_event(
                ev.kind.name(),
                "comm",
                pid,
                1000.0 + node as f64,
                ev.start_s,
                ev.end_s,
                [
                    ("edge", Json::Str(edge.into())),
                    ("peer", Json::Num(ev.peer as f64)),
                    ("bytes", Json::Num(ev.bytes as f64)),
                ],
            ));
        }
    }
    // Driver CPI lifetimes.
    for m in &trace.cpis {
        events.push(complete_event(
            &format!("cpi {}", m.cpi),
            "cpi",
            7,
            0.0,
            m.inject_s,
            m.complete_s,
            [("cpi", Json::Num(m.cpi as f64))],
        ));
    }
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".into())),
    ])
}

fn complete_event<const N: usize>(
    name: &str,
    cat: &str,
    pid: usize,
    tid: f64,
    t0: f64,
    t1: f64,
    args: [(&str, Json); N],
) -> Json {
    Json::obj([
        ("name", Json::Str(name.into())),
        ("cat", Json::Str(cat.into())),
        ("ph", Json::Str("X".into())),
        ("pid", Json::Num(pid as f64)),
        ("tid", Json::Num(tid)),
        ("ts", Json::Num(t0 * US)),
        ("dur", Json::Num((t1 - t0).max(0.0) * US)),
        ("args", Json::obj(args)),
    ])
}

/// Flamegraph-style per-task breakdown plus paper-style tables.
///
/// Three sections, mirroring how the paper reports its evaluation:
/// per-task compute (Tables 2–4 shape: recv / comp / send / idle per
/// CPI), per-edge communication (Tables 5–8 shape: messages and bytes
/// per CPI, receive time) and the pipeline rates (throughput, latency).
pub fn render_breakdown(trace: &PipelineTrace, timings: &PipelineTimings) -> String {
    let stats = TraceStats::from_trace(trace);
    let mut out = String::new();
    writeln!(
        out,
        "measured pipeline timeline — {} CPIs on {:?} ({} ranks + driver)",
        trace.num_cpis,
        trace.assign.0,
        trace.assign.total()
    )
    .unwrap();

    // --- flamegraph-style per-task bars (mean per CPI per node) -----------
    writeln!(
        out,
        "\nper-task time per CPI (r = recv wait+unpack, c = compute, s = send/pack)"
    )
    .unwrap();
    let widest = timings
        .tasks
        .iter()
        .map(TaskTiming::total)
        .fold(0.0f64, f64::max)
        .max(1e-12);
    const COLS: usize = 44;
    for (t, name) in TASK_NAMES.iter().enumerate() {
        let tt = &timings.tasks[t];
        let cols = |x: f64| ((x / widest) * COLS as f64).round() as usize;
        let bar: String = std::iter::repeat_n('r', cols(tt.recv))
            .chain(std::iter::repeat_n('c', cols(tt.comp)))
            .chain(std::iter::repeat_n('s', cols(tt.send)))
            .collect();
        writeln!(
            out,
            "  {name:<9} |{bar:<COLS$}| {:9.3} ms",
            tt.total() * 1e3
        )
        .unwrap();
    }

    // --- paper-style per-task compute table --------------------------------
    writeln!(out, "\nper-task phase times, mean per CPI per node (ms)").unwrap();
    writeln!(
        out,
        "  {:<9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "task", "recv", "comp", "send", "idle", "total"
    )
    .unwrap();
    for (t, name) in TASK_NAMES.iter().enumerate() {
        let tt = &timings.tasks[t];
        writeln!(
            out,
            "  {:<9} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            name,
            tt.recv * 1e3,
            tt.comp * 1e3,
            tt.send * 1e3,
            tt.recv_idle * 1e3,
            tt.total() * 1e3
        )
        .unwrap();
    }

    // --- per-edge communication table --------------------------------------
    writeln!(
        out,
        "\nper-edge communication (wire bytes in the machine-model encoding)"
    )
    .unwrap();
    writeln!(
        out,
        "  {:<18} {:>6} {:>12} {:>12} {:>10}",
        "edge", "msgs", "bytes/CPI", "total bytes", "recv (ms)"
    )
    .unwrap();
    for (e, name) in EDGE_NAMES.iter().enumerate() {
        let st = &stats.edges[e];
        if st.msgs == 0 {
            continue;
        }
        writeln!(
            out,
            "  {:<18} {:>6} {:>12} {:>12} {:>10.3}",
            name,
            st.msgs,
            st.bytes_per_cpi,
            st.total_bytes,
            st.recv_s * 1e3
        )
        .unwrap();
    }

    // --- pipeline rates -----------------------------------------------------
    writeln!(out, "\npipeline rates (measured on this host)").unwrap();
    writeln!(
        out,
        "  throughput {:.2} CPI/s   end-to-end latency {:.3} ms",
        timings.measured_throughput,
        timings.measured_latency * 1e3
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stap_mp::CommEvent;

    fn tiny_trace() -> PipelineTrace {
        let span = TaskSpan {
            cpi: 0,
            start: 0.0,
            recv_end: 0.001,
            comp_end: 0.003,
            send_end: 0.004,
        };
        PipelineTrace {
            assign: NodeAssignment::tiny(),
            num_cpis: 1,
            tasks: vec![TaskInterval {
                task: 0,
                node: 0,
                span,
            }],
            comm: vec![RankTrace {
                rank: 0,
                events: vec![CommEvent {
                    kind: TraceKind::Send,
                    peer: 1,
                    tag: crate::msg::tag(crate::msg::Edge::DopplerToEasyWt, 0),
                    bytes: 256,
                    start_s: 0.003,
                    end_s: 0.003,
                }],
            }],
            cpis: vec![CpiMark {
                cpi: 0,
                inject_s: 0.0,
                complete_s: 0.005,
            }],
        }
    }

    #[test]
    fn stats_aggregate_send_bytes_per_edge() {
        let stats = TraceStats::from_trace(&tiny_trace());
        let e = crate::msg::Edge::DopplerToEasyWt as usize;
        assert_eq!(stats.edges[e].msgs, 1);
        assert_eq!(stats.edges[e].bytes_per_cpi, 256);
        assert_eq!(stats.edges[e].total_bytes, 256);
        assert_eq!(stats.bytes_per_cpi()[e], 256);
    }

    #[test]
    fn chrome_json_has_required_shape() {
        let j = chrome_trace_json(&tiny_trace());
        let events = match j.get("traceEvents") {
            Some(Json::Arr(v)) => v,
            other => panic!("traceEvents missing or not an array: {other:?}"),
        };
        // 8 process_name metadata + 3 task phases + 1 comm + 1 cpi.
        assert_eq!(events.len(), 8 + 3 + 1 + 1);
        for ev in events {
            let ph = match ev.get("ph") {
                Some(Json::Str(s)) => s.as_str(),
                _ => panic!("event without ph"),
            };
            assert!(matches!(ph, "M" | "X"), "unexpected phase {ph}");
            if ph == "X" {
                for key in ["name", "cat", "pid", "tid", "ts", "dur", "args"] {
                    assert!(ev.get(key).is_some(), "X event missing {key}");
                }
            }
        }
    }

    #[test]
    fn breakdown_names_tasks_edges_and_rates() {
        let trace = tiny_trace();
        let mut timings = PipelineTimings::default();
        timings.tasks[0] = TaskTiming {
            recv: 0.001,
            comp: 0.002,
            send: 0.001,
            recv_idle: 0.0005,
        };
        timings.measured_throughput = 100.0;
        timings.measured_latency = 0.005;
        let text = render_breakdown(&trace, &timings);
        for name in TASK_NAMES {
            assert!(text.contains(name), "missing task {name}");
        }
        assert!(text.contains("doppler->easy_wt"));
        assert!(text.contains("throughput"));
        assert!(text.contains("latency"));
    }
}
