//! Process-boundary codecs for the pipeline.
//!
//! Two serialization layers live here, both dependency-free:
//!
//! * the **binary [`Msg`] codec** ([`encode_msg`] / [`decode_msg`] /
//!   [`msg_codec`]) that the shared-memory and TCP transports use to
//!   move pipeline messages between rank *processes*. Every `f64`
//!   travels as its little-endian bit pattern, so a cross-process run
//!   produces detections bit-identical to the in-process channel
//!   fabric — the property the transport-parity gate asserts;
//! * the **JSON result codecs** ([`rank_result_to_json`] /
//!   [`rank_result_from_json`], plus the [`stap_mp::RankTrace`]
//!   equivalents) that a child rank process uses to hand its
//!   [`RankResult`] back to the cluster parent over stdout. JSON
//!   numbers in `stap-util` print in shortest-roundtrip form, so
//!   timing floats survive; detections never take this path (they flow
//!   to the driver rank over the binary codec).

use crate::metrics::{CpiOutcome, EdgeHealth, PipelineHealth};
use crate::msg::{Msg, Payload, SubCpi};
use crate::runner::{DriverResult, RankResult};
use crate::tasks::TaskReport;
use crate::trace::TaskSpan;
use stap_core::Detection;
use stap_cube::{CCube, RCube};
use stap_math::{CMat, Cx};
use stap_mp::{CommEvent, RankTrace, TraceKind, WireCodec};
use stap_util::Json;
use std::sync::Arc;

/// Bumped when the binary layout changes; a mismatch panics loudly
/// instead of silently mis-decoding a frame from an older binary.
const VERSION: u8 = 1;

const KIND_CUBE: u8 = 0;
const KIND_REAL: u8 = 1;
const KIND_WEIGHTS: u8 = 2;
const KIND_DETECTIONS: u8 = 3;
const KIND_DETECTIONS_GROUP: u8 = 4;
const KIND_DROPPED: u8 = 5;
const KIND_SHUTDOWN: u8 = 6;

/// Serializes `msg` onto `out` (which the transport reuses across
/// sends; this function only appends).
pub fn encode_msg(msg: &Msg, out: &mut Vec<u8>) {
    out.push(VERSION);
    out.extend_from_slice(&msg.seq.to_le_bytes());
    out.push(msg.degraded as u8);
    match &msg.group {
        None => out.push(0),
        Some(g) => {
            out.push(1);
            put_u32(out, g.len());
            for s in g.iter() {
                out.extend_from_slice(&s.stream.to_le_bytes());
                out.extend_from_slice(&s.scpi.to_le_bytes());
            }
        }
    }
    match &msg.payload {
        Payload::Cube(c) => {
            out.push(KIND_CUBE);
            put_shape(out, c.shape());
            put_cx_slice(out, c.as_slice());
        }
        Payload::Real(r) => {
            out.push(KIND_REAL);
            put_shape(out, r.shape());
            for v in r.as_slice() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Payload::Weights(ws) => {
            out.push(KIND_WEIGHTS);
            put_u32(out, ws.len());
            for w in ws {
                put_u32(out, w.rows());
                put_u32(out, w.cols());
                put_cx_slice(out, w.as_slice());
            }
        }
        Payload::Detections(ds) => {
            out.push(KIND_DETECTIONS);
            put_detections(out, ds);
        }
        Payload::DetectionsGroup(gs, flags) => {
            out.push(KIND_DETECTIONS_GROUP);
            put_u32(out, gs.len());
            for ds in gs {
                put_detections(out, ds);
            }
            put_u32(out, flags.len());
            for &f in flags {
                out.push(f as u8);
            }
        }
        Payload::Dropped => out.push(KIND_DROPPED),
        Payload::Shutdown => out.push(KIND_SHUTDOWN),
    }
}

/// Inverse of [`encode_msg`]. Panics on a malformed or version-skewed
/// frame: the sender is a rank of the same binary, so corruption here
/// is a bug, not an input error.
pub fn decode_msg(bytes: &[u8]) -> Msg {
    let mut c = Cursor { b: bytes, pos: 0 };
    let ver = c.u8();
    assert_eq!(ver, VERSION, "wire codec version skew: got {ver}");
    let seq = c.u32();
    let degraded = c.u8() != 0;
    let group = match c.u8() {
        0 => None,
        _ => {
            let n = c.u32() as usize;
            let mut g = Vec::with_capacity(n);
            for _ in 0..n {
                g.push(SubCpi {
                    stream: c.u16(),
                    scpi: c.u32(),
                });
            }
            Some(Arc::from(g.into_boxed_slice()))
        }
    };
    let payload = match c.u8() {
        KIND_CUBE => {
            let shape = c.shape();
            let data = c.cx_vec(shape[0] * shape[1] * shape[2]);
            Payload::Cube(CCube::from_vec(shape, data))
        }
        KIND_REAL => {
            let shape = c.shape();
            let n = shape[0] * shape[1] * shape[2];
            let data = (0..n).map(|_| c.f64()).collect();
            Payload::Real(RCube::from_vec(shape, data))
        }
        KIND_WEIGHTS => {
            let n = c.u32() as usize;
            let mut ws = Vec::with_capacity(n);
            for _ in 0..n {
                let rows = c.u32() as usize;
                let cols = c.u32() as usize;
                let data = c.cx_vec(rows * cols);
                ws.push(CMat::from_vec(rows, cols, data));
            }
            Payload::Weights(ws)
        }
        KIND_DETECTIONS => Payload::Detections(c.detections()),
        KIND_DETECTIONS_GROUP => {
            let n = c.u32() as usize;
            let gs = (0..n).map(|_| c.detections()).collect();
            let nf = c.u32() as usize;
            let flags = (0..nf).map(|_| c.u8() != 0).collect();
            Payload::DetectionsGroup(gs, flags)
        }
        KIND_DROPPED => Payload::Dropped,
        KIND_SHUTDOWN => Payload::Shutdown,
        k => panic!("unknown payload kind {k}"),
    };
    assert_eq!(c.pos, bytes.len(), "trailing bytes in wire frame");
    Msg {
        seq,
        degraded,
        group,
        payload,
    }
}

/// The [`WireCodec`] the cluster transports install for pipeline runs.
pub fn msg_codec() -> WireCodec<Msg> {
    WireCodec {
        encode: encode_msg,
        decode: decode_msg,
    }
}

fn put_u32(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&u32::try_from(v).expect("length fits u32").to_le_bytes());
}

fn put_shape(out: &mut Vec<u8>, shape: [usize; 3]) {
    for d in shape {
        put_u32(out, d);
    }
}

fn put_cx_slice(out: &mut Vec<u8>, xs: &[Cx]) {
    for x in xs {
        out.extend_from_slice(&x.re.to_le_bytes());
        out.extend_from_slice(&x.im.to_le_bytes());
    }
}

fn put_detections(out: &mut Vec<u8>, ds: &[Detection]) {
    put_u32(out, ds.len());
    for d in ds {
        out.extend_from_slice(&(d.bin as u64).to_le_bytes());
        out.extend_from_slice(&(d.beam as u64).to_le_bytes());
        out.extend_from_slice(&(d.range as u64).to_le_bytes());
        out.extend_from_slice(&d.power.to_le_bytes());
        out.extend_from_slice(&d.threshold.to_le_bytes());
    }
}

struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> &[u8] {
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    fn u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn u16(&mut self) -> u16 {
        u16::from_le_bytes(self.take(2).try_into().unwrap())
    }

    fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    fn f64(&mut self) -> f64 {
        f64::from_bits(self.u64())
    }

    fn shape(&mut self) -> [usize; 3] {
        [
            self.u32() as usize,
            self.u32() as usize,
            self.u32() as usize,
        ]
    }

    fn cx_vec(&mut self, n: usize) -> Vec<Cx> {
        (0..n)
            .map(|_| Cx {
                re: self.f64(),
                im: self.f64(),
            })
            .collect()
    }

    fn detections(&mut self) -> Vec<Detection> {
        let n = self.u32() as usize;
        (0..n)
            .map(|_| Detection {
                bin: self.u64() as usize,
                beam: self.u64() as usize,
                range: self.u64() as usize,
                power: self.f64(),
                threshold: self.f64(),
            })
            .collect()
    }
}

/// FNV-1a (64-bit) digest of a per-CPI detection structure, covering
/// every index and the *bit patterns* of every float. Two runs produce
/// the same digest iff their detections are bit-identical CPI by CPI —
/// the transport-parity gate compares this single value across
/// inproc/shm/tcp instead of diffing full detection dumps.
pub fn detections_digest(dets: &[Vec<Detection>]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn eat(h: &mut u64, bytes: &[u8]) {
        for &b in bytes {
            *h ^= b as u64;
            *h = h.wrapping_mul(PRIME);
        }
    }
    let mut h = OFFSET;
    eat(&mut h, &(dets.len() as u64).to_le_bytes());
    for ds in dets {
        eat(&mut h, &(ds.len() as u64).to_le_bytes());
        for d in ds {
            eat(&mut h, &(d.bin as u64).to_le_bytes());
            eat(&mut h, &(d.beam as u64).to_le_bytes());
            eat(&mut h, &(d.range as u64).to_le_bytes());
            eat(&mut h, &d.power.to_bits().to_le_bytes());
            eat(&mut h, &d.threshold.to_bits().to_le_bytes());
        }
    }
    h
}

// ---------------------------------------------------------------------
// JSON result codecs (child rank process -> cluster parent).
// ---------------------------------------------------------------------

/// Serializes a rank's result for the cluster parent.
pub fn rank_result_to_json(r: &RankResult) -> Json {
    match r {
        RankResult::Task { task, node, report } => Json::obj([
            ("kind", Json::Str("task".into())),
            ("task", Json::Num(*task as f64)),
            ("node", Json::Num(*node as f64)),
            ("report", task_report_to_json(report)),
        ]),
        RankResult::Driver(d) => Json::obj([
            ("kind", Json::Str("driver".into())),
            (
                "detections",
                Json::arr(d.detections.iter().map(|ds| detections_to_json(ds))),
            ),
            ("inject_t", f64_arr(&d.inject_t)),
            ("complete_t", f64_arr(&d.complete_t)),
            (
                "outcomes",
                Json::arr(d.outcomes.iter().map(|o| {
                    Json::Str(
                        match o {
                            CpiOutcome::Ok => "ok",
                            CpiOutcome::DegradedStaleWeights => "degraded",
                            CpiOutcome::Dropped => "dropped",
                        }
                        .into(),
                    )
                })),
            ),
            ("health", health_to_json(&d.health)),
        ]),
    }
}

/// Inverse of [`rank_result_to_json`].
pub fn rank_result_from_json(j: &Json) -> Result<RankResult, String> {
    match str_field(j, "kind")? {
        "task" => Ok(RankResult::Task {
            task: usize_field(j, "task")?,
            node: usize_field(j, "node")?,
            report: task_report_from_json(j.get("report").ok_or("missing report")?)?,
        }),
        "driver" => {
            let detections = arr_field(j, "detections")?
                .iter()
                .map(detections_from_json)
                .collect::<Result<_, _>>()?;
            let outcomes = arr_field(j, "outcomes")?
                .iter()
                .map(|o| match o {
                    Json::Str(s) if s == "ok" => Ok(CpiOutcome::Ok),
                    Json::Str(s) if s == "degraded" => Ok(CpiOutcome::DegradedStaleWeights),
                    Json::Str(s) if s == "dropped" => Ok(CpiOutcome::Dropped),
                    other => Err(format!("bad outcome {other:?}")),
                })
                .collect::<Result<_, _>>()?;
            Ok(RankResult::Driver(DriverResult {
                detections,
                inject_t: f64_vec(j, "inject_t")?,
                complete_t: f64_vec(j, "complete_t")?,
                outcomes,
                health: health_from_json(j.get("health").ok_or("missing health")?)?,
            }))
        }
        other => Err(format!("unknown rank result kind {other:?}")),
    }
}

/// Serializes one rank's comm trace (for merged cluster timelines).
pub fn rank_trace_to_json(t: &RankTrace) -> Json {
    Json::obj([
        ("rank", Json::Num(t.rank as f64)),
        (
            "events",
            Json::arr(t.events.iter().map(|e| {
                Json::obj([
                    ("kind", Json::Str(e.kind.name().into())),
                    ("peer", Json::Num(e.peer as f64)),
                    // Tags use the full u64 range (the barrier tag is
                    // u64::MAX); bit-exact via string.
                    ("tag", Json::Str(e.tag.to_string())),
                    ("bytes", Json::Num(e.bytes as f64)),
                    ("start_s", Json::Num(e.start_s)),
                    ("end_s", Json::Num(e.end_s)),
                ])
            })),
        ),
    ])
}

/// Inverse of [`rank_trace_to_json`].
pub fn rank_trace_from_json(j: &Json) -> Result<RankTrace, String> {
    let events = arr_field(j, "events")?
        .iter()
        .map(|e| {
            let kind = match str_field(e, "kind")? {
                "send" => TraceKind::Send,
                "recv" => TraceKind::Recv,
                "wait" => TraceKind::Wait,
                "redistribute" => TraceKind::Redistribute,
                other => return Err(format!("unknown trace kind {other:?}")),
            };
            Ok(CommEvent {
                kind,
                peer: usize_field(e, "peer")?,
                tag: str_field(e, "tag")?
                    .parse::<u64>()
                    .map_err(|e| format!("bad tag: {e}"))?,
                bytes: usize_field(e, "bytes")? as u64,
                start_s: num_field(e, "start_s")?,
                end_s: num_field(e, "end_s")?,
            })
        })
        .collect::<Result<_, _>>()?;
    Ok(RankTrace {
        rank: usize_field(j, "rank")?,
        events,
    })
}

fn task_report_to_json(r: &TaskReport) -> Json {
    Json::obj([
        (
            "timings",
            Json::arr(
                r.timings
                    .iter()
                    .map(|t| Json::arr([t.recv, t.comp, t.send, t.recv_idle].map(Json::Num))),
            ),
        ),
        ("health", health_to_json(&r.health)),
        (
            "spans",
            Json::arr(r.spans.iter().map(|s| {
                Json::obj([
                    ("cpi", Json::Num(s.cpi as f64)),
                    ("start", Json::Num(s.start)),
                    ("recv_end", Json::Num(s.recv_end)),
                    ("comp_end", Json::Num(s.comp_end)),
                    ("send_end", Json::Num(s.send_end)),
                ])
            })),
        ),
    ])
}

fn task_report_from_json(j: &Json) -> Result<TaskReport, String> {
    let timings = arr_field(j, "timings")?
        .iter()
        .map(|t| {
            let xs = match t {
                Json::Arr(xs) if xs.len() == 4 => xs,
                other => return Err(format!("bad timing {other:?}")),
            };
            let f = |i: usize| xs[i].as_f64().ok_or(format!("bad timing field {i}"));
            Ok(crate::metrics::TaskTiming {
                recv: f(0)?,
                comp: f(1)?,
                send: f(2)?,
                recv_idle: f(3)?,
            })
        })
        .collect::<Result<_, _>>()?;
    let spans = arr_field(j, "spans")?
        .iter()
        .map(|s| {
            Ok(TaskSpan {
                cpi: usize_field(s, "cpi")?,
                start: num_field(s, "start")?,
                recv_end: num_field(s, "recv_end")?,
                comp_end: num_field(s, "comp_end")?,
                send_end: num_field(s, "send_end")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(TaskReport {
        timings,
        health: health_from_json(j.get("health").ok_or("missing health")?)?,
        spans,
    })
}

fn health_to_json(h: &PipelineHealth) -> Json {
    Json::obj([
        (
            "edges",
            Json::arr(h.edges.iter().map(|e| {
                Json::arr(
                    [
                        e.retries,
                        e.dropped,
                        e.stale_weights,
                        e.quarantined,
                        e.late_or_dup,
                    ]
                    .map(|v| Json::Num(v as f64)),
                )
            })),
        ),
        ("dropped_cpis", Json::Num(h.dropped_cpis as f64)),
        ("degraded_cpis", Json::Num(h.degraded_cpis as f64)),
        (
            "max_mailbox_depth",
            Json::arr(h.max_mailbox_depth.iter().map(|&v| Json::Num(v as f64))),
        ),
        (
            "mailbox_over_high_water",
            Json::Num(h.mailbox_over_high_water as f64),
        ),
    ])
}

fn health_from_json(j: &Json) -> Result<PipelineHealth, String> {
    let mut h = PipelineHealth::default();
    let edges = arr_field(j, "edges")?;
    if edges.len() != h.edges.len() {
        return Err(format!(
            "expected {} edges, got {}",
            h.edges.len(),
            edges.len()
        ));
    }
    for (slot, e) in h.edges.iter_mut().zip(edges) {
        let xs = match e {
            Json::Arr(xs) if xs.len() == 5 => xs,
            other => return Err(format!("bad edge health {other:?}")),
        };
        let f = |i: usize| -> Result<u64, String> {
            xs[i]
                .as_f64()
                .map(|v| v as u64)
                .ok_or(format!("bad edge counter {i}"))
        };
        *slot = EdgeHealth {
            retries: f(0)?,
            dropped: f(1)?,
            stale_weights: f(2)?,
            quarantined: f(3)?,
            late_or_dup: f(4)?,
        };
    }
    h.dropped_cpis = usize_field(j, "dropped_cpis")? as u64;
    h.degraded_cpis = usize_field(j, "degraded_cpis")? as u64;
    let depths = arr_field(j, "max_mailbox_depth")?;
    for (slot, d) in h.max_mailbox_depth.iter_mut().zip(depths) {
        *slot = d.as_f64().ok_or("bad mailbox depth")? as u64;
    }
    h.mailbox_over_high_water = usize_field(j, "mailbox_over_high_water")? as u64;
    Ok(h)
}

fn detections_to_json(ds: &[Detection]) -> Json {
    // Power/threshold as bit patterns: detection floats must survive
    // any path bit-exactly for the parity digests.
    Json::arr(ds.iter().map(|d| {
        Json::arr([
            Json::Num(d.bin as f64),
            Json::Num(d.beam as f64),
            Json::Num(d.range as f64),
            Json::Str(d.power.to_bits().to_string()),
            Json::Str(d.threshold.to_bits().to_string()),
        ])
    }))
}

fn detections_from_json(j: &Json) -> Result<Vec<Detection>, String> {
    let items = match j {
        Json::Arr(items) => items,
        other => return Err(format!("bad detections {other:?}")),
    };
    items
        .iter()
        .map(|d| {
            let xs = match d {
                Json::Arr(xs) if xs.len() == 5 => xs,
                other => return Err(format!("bad detection {other:?}")),
            };
            let idx = |i: usize| -> Result<usize, String> {
                xs[i]
                    .as_f64()
                    .map(|v| v as usize)
                    .ok_or(format!("bad detection index {i}"))
            };
            let bits = |i: usize| -> Result<f64, String> {
                match &xs[i] {
                    Json::Str(s) => s
                        .parse::<u64>()
                        .map(f64::from_bits)
                        .map_err(|e| format!("bad detection bits: {e}")),
                    other => Err(format!("bad detection float {other:?}")),
                }
            };
            Ok(Detection {
                bin: idx(0)?,
                beam: idx(1)?,
                range: idx(2)?,
                power: bits(3)?,
                threshold: bits(4)?,
            })
        })
        .collect()
}

fn f64_arr(xs: &[f64]) -> Json {
    Json::arr(xs.iter().map(|&v| Json::Num(v)))
}

fn f64_vec(j: &Json, key: &str) -> Result<Vec<f64>, String> {
    arr_field(j, key)?
        .iter()
        .map(|v| v.as_f64().ok_or(format!("bad number in {key}")))
        .collect()
}

fn str_field<'a>(j: &'a Json, key: &str) -> Result<&'a str, String> {
    match j.get(key) {
        Some(Json::Str(s)) => Ok(s),
        other => Err(format!("missing/bad string field {key}: {other:?}")),
    }
}

fn num_field(j: &Json, key: &str) -> Result<f64, String> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or(format!("missing/bad numeric field {key}"))
}

fn usize_field(j: &Json, key: &str) -> Result<usize, String> {
    num_field(j, key).map(|v| v as usize)
}

fn arr_field<'a>(j: &'a Json, key: &str) -> Result<&'a [Json], String> {
    match j.get(key) {
        Some(Json::Arr(items)) => Ok(items),
        other => Err(format!("missing/bad array field {key}: {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::TaskTiming;

    fn roundtrip(msg: &Msg) -> Msg {
        let mut buf = Vec::new();
        encode_msg(msg, &mut buf);
        decode_msg(&buf)
    }

    fn det(bin: usize, beam: usize, range: usize, power: f64, threshold: f64) -> Detection {
        Detection {
            bin,
            beam,
            range,
            power,
            threshold,
        }
    }

    fn assert_detections_eq(a: &[Detection], b: &[Detection]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!((x.bin, x.beam, x.range), (y.bin, y.beam, y.range));
            assert_eq!(x.power.to_bits(), y.power.to_bits());
            assert_eq!(x.threshold.to_bits(), y.threshold.to_bits());
        }
    }

    #[test]
    fn cube_payload_round_trips_bitwise() {
        let data: Vec<Cx> = (0..24)
            .map(|i| Cx {
                re: (i as f64).sqrt() * 1.0e-3,
                im: -(i as f64) / 7.0,
            })
            .collect();
        let msg = Msg::flagged(9, true, Payload::Cube(CCube::from_vec([2, 3, 4], data)));
        let got = roundtrip(&msg);
        assert_eq!(got.seq, 9);
        assert!(got.degraded);
        assert!(got.group.is_none());
        match (&msg.payload, &got.payload) {
            (Payload::Cube(a), Payload::Cube(b)) => {
                assert_eq!(a.shape(), b.shape());
                for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                    assert_eq!(x.re.to_bits(), y.re.to_bits());
                    assert_eq!(x.im.to_bits(), y.im.to_bits());
                }
            }
            _ => panic!("wrong payload kind"),
        }
    }

    #[test]
    fn real_and_weights_round_trip() {
        let r = RCube::from_vec(
            [1, 2, 3],
            vec![0.5, -1.5, f64::MIN_POSITIVE, 3.25, 0.0, 9.0],
        );
        let got = roundtrip(&Msg::new(3, Payload::Real(r.clone())));
        match got.payload {
            Payload::Real(b) => {
                assert_eq!(b.shape(), r.shape());
                assert_eq!(b.as_slice(), r.as_slice());
            }
            _ => panic!("wrong payload kind"),
        }

        let w0 = CMat::from_vec(2, 2, vec![Cx { re: 1.0, im: 2.0 }; 4]);
        let w1 = CMat::from_vec(1, 3, vec![Cx { re: -0.25, im: 0.0 }; 3]);
        let got = roundtrip(&Msg::new(4, Payload::Weights(vec![w0.clone(), w1.clone()])));
        match got.payload {
            Payload::Weights(ws) => {
                assert_eq!(ws.len(), 2);
                assert_eq!((ws[0].rows(), ws[0].cols()), (2, 2));
                assert_eq!((ws[1].rows(), ws[1].cols()), (1, 3));
                assert_eq!(ws[0].as_slice(), w0.as_slice());
                assert_eq!(ws[1].as_slice(), w1.as_slice());
            }
            _ => panic!("wrong payload kind"),
        }
    }

    #[test]
    fn detection_payloads_and_group_metadata_round_trip() {
        let ds = vec![det(1, 2, 3, 1.25e-8, 0.75), det(4, 0, 17, -0.0, f64::MAX)];
        let group: Arc<[SubCpi]> = Arc::from(
            vec![
                SubCpi {
                    stream: 7,
                    scpi: 40,
                },
                SubCpi {
                    stream: 65535,
                    scpi: u32::MAX,
                },
            ]
            .into_boxed_slice(),
        );
        let msg = Msg::grouped(
            11,
            group.clone(),
            Payload::DetectionsGroup(vec![ds.clone(), Vec::new()], vec![true, false]),
        );
        let got = roundtrip(&msg);
        assert_eq!(got.seq, 11);
        assert_eq!(got.group.as_deref(), Some(&group[..]));
        match got.payload {
            Payload::DetectionsGroup(gs, flags) => {
                assert_eq!(gs.len(), 2);
                assert_detections_eq(&gs[0], &ds);
                assert!(gs[1].is_empty());
                assert_eq!(flags, vec![true, false]);
            }
            _ => panic!("wrong payload kind"),
        }

        let got = roundtrip(&Msg::new(5, Payload::Detections(ds.clone())));
        match got.payload {
            Payload::Detections(b) => assert_detections_eq(&b, &ds),
            _ => panic!("wrong payload kind"),
        }
    }

    #[test]
    fn digest_separates_any_field_flip() {
        let base = vec![vec![det(1, 2, 3, 0.5, 0.25)], Vec::new()];
        let d0 = detections_digest(&base);
        assert_eq!(d0, detections_digest(&base.clone()), "deterministic");
        let variants = [
            vec![vec![det(0, 2, 3, 0.5, 0.25)], Vec::new()],
            vec![vec![det(1, 2, 3, 0.5000001, 0.25)], Vec::new()],
            vec![vec![det(1, 2, 3, -0.5, 0.25)], Vec::new()],
            vec![vec![det(1, 2, 3, 0.5, 0.25)]],
            vec![Vec::new(), vec![det(1, 2, 3, 0.5, 0.25)]],
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(d0, detections_digest(v), "variant {i} must differ");
        }
    }

    #[test]
    fn sentinels_round_trip() {
        assert!(matches!(
            roundtrip(&Msg::dropped(2)).payload,
            Payload::Dropped
        ));
        assert!(matches!(
            roundtrip(&Msg::new(6, Payload::Shutdown)).payload,
            Payload::Shutdown
        ));
    }

    #[test]
    fn version_skew_is_loud() {
        let mut buf = Vec::new();
        encode_msg(&Msg::dropped(0), &mut buf);
        buf[0] = 99;
        assert!(std::panic::catch_unwind(|| decode_msg(&buf)).is_err());
    }

    #[test]
    fn rank_result_json_round_trips() {
        let report = TaskReport {
            timings: vec![
                TaskTiming {
                    recv: 0.125,
                    comp: 1.0 / 3.0,
                    send: 2.5e-4,
                    recv_idle: 0.0625,
                },
                TaskTiming::default(),
            ],
            health: {
                let mut h = PipelineHealth::default();
                h.edges[3].retries = 2;
                h.edges[9].dropped = 1;
                h.max_mailbox_depth[1] = 12;
                h.mailbox_over_high_water = 4;
                h
            },
            spans: vec![TaskSpan {
                cpi: 5,
                start: 0.001,
                recv_end: 0.002,
                comp_end: 0.0035,
                send_end: 0.004,
            }],
        };
        let j = rank_result_to_json(&RankResult::Task {
            task: 6,
            node: 1,
            report,
        });
        let text = j.to_string_compact();
        let back = rank_result_from_json(&Json::parse(&text).unwrap()).unwrap();
        match back {
            RankResult::Task { task, node, report } => {
                assert_eq!((task, node), (6, 1));
                assert_eq!(report.timings.len(), 2);
                assert_eq!(report.timings[0].comp, 1.0 / 3.0);
                assert_eq!(report.health.edges[3].retries, 2);
                assert_eq!(report.health.edges[9].dropped, 1);
                assert_eq!(report.health.max_mailbox_depth[1], 12);
                assert_eq!(report.health.mailbox_over_high_water, 4);
                assert_eq!(report.spans[0].cpi, 5);
                assert_eq!(report.spans[0].comp_end, 0.0035);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn driver_result_json_keeps_detection_bits() {
        let d = DriverResult {
            detections: vec![vec![det(1, 2, 3, 0.1 + 0.2, 1.0e-300)], Vec::new()],
            inject_t: vec![0.0, 0.125],
            complete_t: vec![0.5, 0.625],
            outcomes: vec![CpiOutcome::Ok, CpiOutcome::Dropped],
            health: PipelineHealth::default(),
        };
        let text = rank_result_to_json(&RankResult::Driver(d)).to_string_compact();
        match rank_result_from_json(&Json::parse(&text).unwrap()).unwrap() {
            RankResult::Driver(back) => {
                assert_eq!(
                    back.detections[0][0].power.to_bits(),
                    (0.1f64 + 0.2).to_bits()
                );
                assert_eq!(
                    back.detections[0][0].threshold.to_bits(),
                    1.0e-300f64.to_bits()
                );
                assert!(back.detections[1].is_empty());
                assert_eq!(back.outcomes, vec![CpiOutcome::Ok, CpiOutcome::Dropped]);
                assert_eq!(back.complete_t, vec![0.5, 0.625]);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn rank_trace_json_round_trips() {
        let t = RankTrace {
            rank: 3,
            events: vec![CommEvent {
                kind: TraceKind::Wait,
                peer: 3,
                tag: u64::MAX,
                bytes: 0,
                start_s: 0.25,
                end_s: 0.375,
            }],
        };
        let text = rank_trace_to_json(&t).to_string_compact();
        let back = rank_trace_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.rank, 3);
        assert_eq!(back.events, t.events);
    }
}
