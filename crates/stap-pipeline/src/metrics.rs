//! Per-task timing and the paper's performance equations.
//!
//! Each task node measures, per CPI, the three phases of Figure 10:
//! receive (`t1 - t0`, includes waiting for predecessors and unpacking),
//! compute (`t2 - t1`) and send (`t3 - t2`, collection/reorganization and
//! posting). Equations (1)-(3) of the paper turn per-task totals into
//! pipeline throughput and latency.

/// Accumulated phase times of one task (averaged over measured CPIs),
/// in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TaskTiming {
    /// Receive phase (may contain idle time waiting on predecessors).
    pub recv: f64,
    /// Computation phase.
    pub comp: f64,
    /// Send phase (packing + posting; asynchronous completion).
    pub send: f64,
    /// Receive idle time (portion of `recv` spent waiting rather than
    /// unpacking) — the quantity equation (3) subtracts.
    pub recv_idle: f64,
}

impl TaskTiming {
    /// Total task time per CPI: `recv + comp + send`.
    pub fn total(&self) -> f64 {
        self.recv + self.comp + self.send
    }

    /// Task time with receive idle excluded (`T'_i` in equation (3)).
    pub fn total_without_idle(&self) -> f64 {
        self.total() - self.recv_idle
    }

    /// Element-wise sum (for averaging across nodes and CPIs).
    pub fn add(&mut self, other: &TaskTiming) {
        self.recv += other.recv;
        self.comp += other.comp;
        self.send += other.send;
        self.recv_idle += other.recv_idle;
    }

    /// Element-wise scale.
    pub fn scale(&self, s: f64) -> TaskTiming {
        TaskTiming {
            recv: self.recv * s,
            comp: self.comp * s,
            send: self.send * s,
            recv_idle: self.recv_idle * s,
        }
    }
}

/// Per-edge fault-tolerance counters (indexed by
/// [`crate::msg::edge_of_tag`] / `Edge as usize`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EdgeHealth {
    /// Receive deadlines that expired and were retried.
    pub retries: u64,
    /// Messages declared lost on this edge (timeout after retries, or a
    /// disconnected peer).
    pub dropped: u64,
    /// CPIs beamformed with last-good (stale) weights because this
    /// weight edge overran its grace deadline or carried a drop marker.
    pub stale_weights: u64,
    /// Payloads rejected by the non-finite screen.
    pub quarantined: u64,
    /// Late or duplicated messages discarded by sequence checking or
    /// end-of-CPI purging.
    pub late_or_dup: u64,
}

impl EdgeHealth {
    /// Element-wise accumulate.
    pub fn add(&mut self, other: &EdgeHealth) {
        self.retries += other.retries;
        self.dropped += other.dropped;
        self.stale_weights += other.stale_weights;
        self.quarantined += other.quarantined;
        self.late_or_dup += other.late_or_dup;
    }

    /// True when any counter is non-zero.
    pub fn any(&self) -> bool {
        *self != EdgeHealth::default()
    }
}

/// Aggregated fault-tolerance health of one run (or one task node,
/// before merging).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PipelineHealth {
    /// Per-edge counters, indexed by `Edge as usize`.
    pub edges: [EdgeHealth; crate::msg::NUM_EDGES],
    /// CPIs the driver classified as dropped end-to-end.
    pub dropped_cpis: u64,
    /// CPIs the driver classified as degraded (stale weights).
    pub degraded_cpis: u64,
    /// Largest buffered mailbox depth observed per edge (sampled once
    /// per CPI/slot at each receiver). Depth telemetry, not a fault
    /// signal: excluded from [`PipelineHealth::any`].
    pub max_mailbox_depth: [u64; crate::msg::NUM_EDGES],
    /// Mailbox pushes that landed at or above the configured soft
    /// high-water mark, summed across ranks (0 when no mark is set).
    pub mailbox_over_high_water: u64,
}

impl PipelineHealth {
    /// Accumulates another node's counters into this one (max-merging
    /// the depth high-water marks).
    pub fn merge(&mut self, other: &PipelineHealth) {
        for (a, b) in self.edges.iter_mut().zip(&other.edges) {
            a.add(b);
        }
        self.dropped_cpis += other.dropped_cpis;
        self.degraded_cpis += other.degraded_cpis;
        for (a, b) in self
            .max_mailbox_depth
            .iter_mut()
            .zip(&other.max_mailbox_depth)
        {
            *a = (*a).max(*b);
        }
        self.mailbox_over_high_water += other.mailbox_over_high_water;
    }

    /// True when any *fault* counter anywhere is non-zero. Mailbox depth
    /// telemetry does not count: healthy pipelined runs legitimately
    /// buffer in-flight messages.
    pub fn any(&self) -> bool {
        self.edges.iter().any(EdgeHealth::any) || self.dropped_cpis > 0 || self.degraded_cpis > 0
    }
}

/// How one CPI made it through the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CpiOutcome {
    /// Fully processed with fresh weights.
    Ok,
    /// Processed, but at least one beamform node used last-good weights
    /// (the paper's CPI `i` -> `i + beams` temporal dependency widened
    /// by one revisit).
    DegradedStaleWeights,
    /// Lost end-to-end (no detections reported).
    Dropped,
}

/// Timings for all seven tasks (paper order) plus measured pipeline
/// rates.
#[derive(Clone, Debug, Default)]
pub struct PipelineTimings {
    /// Per-task phase times, averaged over the measured CPIs.
    pub tasks: [TaskTiming; 7],
    /// Measured throughput: inverse of the mean interval between
    /// successive pipeline completions (CPIs per second).
    pub measured_throughput: f64,
    /// Measured latency: mean time from a CPI entering the first task to
    /// its detection report (seconds).
    pub measured_latency: f64,
    /// Fault-tolerance counters merged across every node. All zero in a
    /// healthy (or non-fault-tolerant) run.
    pub health: PipelineHealth,
    /// Per-CPI outcome as classified by the driver. Empty when the run
    /// was not fault-tolerant (every CPI is implicitly `Ok`).
    pub outcomes: Vec<CpiOutcome>,
    /// Complex buffer pool counters for the run (hits vs misses tells
    /// whether the steady state stayed allocation-free).
    pub pool_cx: stap_cube::PoolStats,
    /// Real buffer pool counters for the run.
    pub pool_real: stap_cube::PoolStats,
}

/// Equation (1): `throughput = 1 / max_i T_i`.
pub fn throughput_eq1(tasks: &[TaskTiming; 7]) -> f64 {
    let worst = tasks.iter().map(TaskTiming::total).fold(0.0, f64::max);
    if worst > 0.0 {
        1.0 / worst
    } else {
        f64::INFINITY
    }
}

/// Equation (2): `latency = T_0 + max(T_3, T_4) + T_5 + T_6` — the
/// weight tasks (1, 2) are off the latency path thanks to the temporal
/// dependency. This is an upper bound: receive phases contain idle time.
pub fn latency_eq2(tasks: &[TaskTiming; 7]) -> f64 {
    tasks[0].total() + tasks[3].total().max(tasks[4].total()) + tasks[5].total() + tasks[6].total()
}

/// Equation (3): like (2) but with receive idle excluded from the
/// downstream tasks (`T'_i`), the paper's "real latency".
pub fn real_latency_eq3(tasks: &[TaskTiming; 7]) -> f64 {
    tasks[0].total()
        + tasks[3]
            .total_without_idle()
            .max(tasks[4].total_without_idle())
        + tasks[5].total_without_idle()
        + tasks[6].total_without_idle()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(recv: f64, comp: f64, send: f64, idle: f64) -> TaskTiming {
        TaskTiming {
            recv,
            comp,
            send,
            recv_idle: idle,
        }
    }

    #[test]
    fn throughput_is_inverse_of_slowest_task() {
        let mut tasks = [TaskTiming::default(); 7];
        tasks[2] = t(0.05, 0.15, 0.0, 0.0); // 0.2 s: bottleneck
        tasks[0] = t(0.01, 0.05, 0.01, 0.0);
        assert!((throughput_eq1(&tasks) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn latency_skips_weight_tasks() {
        let mut tasks = [TaskTiming::default(); 7];
        tasks[0] = t(0.0, 0.1, 0.0, 0.0);
        tasks[1] = t(0.0, 99.0, 0.0, 0.0); // weight: must not count
        tasks[2] = t(0.0, 99.0, 0.0, 0.0);
        tasks[3] = t(0.0, 0.2, 0.0, 0.0);
        tasks[4] = t(0.0, 0.3, 0.0, 0.0);
        tasks[5] = t(0.0, 0.1, 0.0, 0.0);
        tasks[6] = t(0.0, 0.05, 0.0, 0.0);
        assert!((latency_eq2(&tasks) - 0.55).abs() < 1e-12);
    }

    #[test]
    fn real_latency_excludes_idle() {
        let mut tasks = [TaskTiming::default(); 7];
        tasks[0] = t(0.0, 0.1, 0.0, 0.0);
        tasks[3] = t(0.2, 0.1, 0.0, 0.15);
        tasks[4] = t(0.0, 0.05, 0.0, 0.0);
        tasks[5] = t(0.1, 0.1, 0.0, 0.1);
        tasks[6] = t(0.0, 0.05, 0.0, 0.0);
        let eq2 = latency_eq2(&tasks);
        let eq3 = real_latency_eq3(&tasks);
        assert!(eq3 < eq2);
        assert!((eq3 - (0.1 + 0.15 + 0.1 + 0.05)).abs() < 1e-12);
    }

    #[test]
    fn eq3_never_exceeds_eq2() {
        let tasks = [
            t(0.1, 0.2, 0.05, 0.08),
            t(0.0, 0.0, 0.0, 0.0),
            t(0.0, 0.0, 0.0, 0.0),
            t(0.3, 0.1, 0.0, 0.2),
            t(0.2, 0.2, 0.0, 0.1),
            t(0.1, 0.3, 0.0, 0.05),
            t(0.2, 0.1, 0.0, 0.15),
        ];
        assert!(real_latency_eq3(&tasks) <= latency_eq2(&tasks) + 1e-15);
    }
}
