//! Resident multi-stream pipeline: the long-running ingestion back end.
//!
//! The batch runner ([`crate::runner::ParallelStap`]) spawns a world,
//! streams a fixed CPI list through it and tears everything down. A
//! radar front end serving many concurrent *streams* cannot afford that:
//! per-arrival world spawns dominate, and each stream's CPIs arrive
//! interleaved with every other stream's. This module keeps the seven
//! task nodes resident and drives them with **slot groups**: the driver
//! coalesces up to `max_group` CPIs — from *different* streams — into
//! one slot, every cube on every edge carries the group concatenated
//! along axis 0, and the kernels run once per slot over all member
//! CPIs (`DopplerProcessor::process_groups_with` batches the FFT lanes
//! of the whole group through a single `forward_lanes` call).
//!
//! Cross-stream batching is bit-exact with per-stream serial runs
//! because all per-CPI state is keyed by *stream*:
//!
//! * azimuth revisit: `beam = scpi % steering.len()` uses the
//!   per-stream CPI index, not the slot index;
//! * easy-weight history rings are keyed `(stream, beam)`;
//! * hard-weight QR recursion state is keyed `(stream, beam, bin, seg)`;
//! * the beamform tasks keep per-`(stream, beam)` weight FIFOs: every
//!   slot first *pushes* the weight sets computed from its member CPIs,
//!   then *consumes* for each member — popping the front of
//!   `fifo[(stream, scpi % beams)]` yields exactly the weights computed
//!   from `(stream, scpi - beams)`, the paper's TD(1,3)/TD(2,4)
//!   temporal dependency, even when one slot carries several CPIs of
//!   the same stream.
//!
//! The contract the admission layer (`stap-serve`) upholds: each
//! stream's CPIs are submitted in `scpi` order starting at 0, with no
//! gaps. Resident mode is the production fast path — non-fault-tolerant
//! (plain blocking receives), untraced, and steady-state
//! allocation-free for every cube that travels an edge (all drawn from
//! the shared [`PipelinePools`], pre-warmed by [`ResidentStap::reserve`]).

use crate::assignment::{overlap, NodeAssignment, Partitions, *};
use crate::metrics::PipelineHealth;
use crate::msg::{tag, Edge, Msg, Payload, SubCpi};
use crate::runner::PipelineError;
use crate::tasks::{
    easy_cells_in, expect_weights, hard_cells_in, mean_abs, sample_mailbox, weight_sources,
    PipelinePools,
};
use stap_core::params::StapParams;
use stap_core::training::easy_training_cells;
use stap_core::weights::hard_constraint;
use stap_core::{
    cfar,
    doppler::DopplerProcessor,
    pulse::{PulseCompressor, PulseScratch},
    Detection,
};
use stap_cube::{CCube, Cube, PoolStats, RCube, SharedBufferPool};
use stap_math::fft::FftScratch;
use stap_math::qr::qr_update;
use stap_math::solve::{constrained_lstsq, constrained_lstsq_from_r, normalize_columns};
use stap_math::{CMat, Cx};
use stap_mp::{Comm, World};
use stap_radar::Scenario;
use std::collections::{HashMap, VecDeque};
use std::ops::Range;
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One CPI submitted to the resident pipeline.
pub struct CpiJob {
    /// Ingestion stream id.
    pub stream: u16,
    /// Per-stream CPI index (must be contiguous from 0 per stream).
    pub scpi: u32,
    /// The raw data cube, `[k_range, j_channels, n_pulses]`. Draw it
    /// from [`ResidentStap::pools`] (`cx.take_cube`) to keep the steady
    /// state allocation-free — the driver recycles it after packing.
    pub cube: CCube,
    /// Submission instant (the latency clock starts here).
    pub submitted: Instant,
}

/// One CPI's completed result, delivered on the `done` channel.
pub struct CpiDone {
    /// Ingestion stream id.
    pub stream: u16,
    /// Per-stream CPI index.
    pub scpi: u32,
    /// Detections, sorted by (bin, beam, range).
    pub detections: Vec<Detection>,
    /// Submit-to-complete latency in seconds.
    pub latency: f64,
    /// True when screening flagged non-finite samples in this CPI's
    /// power lanes (upstream corruption reached the detector) — the
    /// detections are whatever CFAR salvaged from the finite cells. The
    /// serve layer folds this into per-stream health.
    pub degraded: bool,
}

/// What a resident session reports after shutdown.
#[derive(Clone, Debug, Default)]
pub struct ResidentSummary {
    /// CPIs fully processed.
    pub cpis: u64,
    /// Slots (coalesced groups) processed.
    pub slots: u64,
    /// Merged health counters (mailbox depth telemetry; the fault
    /// counters stay zero — resident mode is non-fault-tolerant).
    pub health: PipelineHealth,
    /// Complex pool traffic. `misses` beyond warmup means
    /// [`ResidentStap::reserve`] under-provisioned.
    pub pool_cx: PoolStats,
    /// Real pool traffic.
    pub pool_real: PoolStats,
    /// Wall-clock seconds from `serve` entry to return.
    pub elapsed: f64,
    /// Per-task busy seconds, summed over that task's nodes: time spent
    /// assembling, computing and packing slots, excluding blocked
    /// receives. The elastic scheduler ranks bottlenecks by
    /// `busy[t] / nodes[t]`.
    pub busy: [f64; 7],
}

/// Cross-slot task state exported when a resident session drains, keyed
/// by **global** bin indices (the task-local partition offsets are
/// rebased out), so a follow-on session may re-partition the same state
/// under a *different* node assignment and continue bit-identically.
///
/// * easy keys are `(stream, beam, easy-bin index in 0..n_easy)`;
/// * hard keys carry the hard-bin index in `0..n_hard` (and the range
///   segment for the QR recursion);
/// * FIFO/history order is preserved front-to-back exactly as the
///   per-node queues held it.
#[derive(Clone, Debug, Default)]
pub struct ResidentState {
    /// Easy-weight training history rings (task 1), front = oldest.
    pub easy_history: HashMap<(u16, usize, usize), VecDeque<CMat>>,
    /// Hard-weight QR recursion state (task 2), per segment.
    pub hard_r: HashMap<(u16, usize, usize, usize), CMat>,
    /// Easy-beamform pending weight FIFOs (task 3), front = next.
    pub easy_fifo: HashMap<(u16, usize, usize), VecDeque<CMat>>,
    /// Hard-beamform pending weight FIFOs (task 4), per-segment sets.
    pub hard_fifo: HashMap<(u16, usize, usize), VecDeque<Vec<CMat>>>,
}

impl ResidentState {
    /// True when no task carried any cross-slot state (a fresh world).
    pub fn is_empty(&self) -> bool {
        self.easy_history.is_empty()
            && self.hard_r.is_empty()
            && self.easy_fifo.is_empty()
            && self.hard_fifo.is_empty()
    }
}

/// What one resident task node hands back when its loop exits.
struct TaskExit {
    health: PipelineHealth,
    busy: f64,
    state: TaskState,
}

impl TaskExit {
    fn stateless(health: PipelineHealth, busy: f64) -> Self {
        TaskExit {
            health,
            busy,
            state: TaskState::Stateless,
        }
    }
}

/// The node-local slice of [`ResidentState`], already rebased to global
/// bin keys by the exporting task.
enum TaskState {
    Stateless,
    EasyWt(HashMap<(u16, usize, usize), VecDeque<CMat>>),
    HardWt(HashMap<(u16, usize, usize, usize), CMat>),
    EasyBf(HashMap<(u16, usize, usize), VecDeque<CMat>>),
    HardBf(HashMap<(u16, usize, usize), VecDeque<Vec<CMat>>>),
}

/// The resident multi-stream STAP pipeline.
pub struct ResidentStap {
    /// Algorithm parameters.
    pub params: StapParams,
    /// Node assignment.
    pub assign: NodeAssignment,
    /// Steering matrices per transmit-beam position.
    pub steering: Vec<CMat>,
    /// Slots the driver keeps in flight.
    pub window: usize,
    /// Maximum CPIs coalesced into one slot.
    pub max_group: usize,
    /// Soft mailbox high-water mark installed in every rank's comm
    /// (0 = disabled); crossings are counted in the summary health.
    pub mailbox_high_water: usize,
    /// Deterministic fault schedule installed into the world on the
    /// next [`Self::serve_with_state`] launch (`None` = clean world,
    /// the production path). The supervisor re-arms this per launch so
    /// a fired panic is not re-injected into the recovery world.
    pub faults: Option<stap_mp::FaultPlan>,
    /// Screen CFAR power lanes for non-finite samples and flag the
    /// owning sub-CPI as degraded (costs one pass over each power
    /// block; off by default).
    pub screen: bool,
    pools: PipelinePools,
}

impl ResidentStap {
    /// Builds a resident runner from explicit steering matrices.
    pub fn new(params: StapParams, assign: NodeAssignment, steering: Vec<CMat>) -> Self {
        params.validate().expect("invalid parameters");
        assert!(!steering.is_empty(), "need at least one steering matrix");
        ResidentStap {
            params,
            assign,
            steering,
            window: 4,
            max_group: 4,
            mailbox_high_water: 0,
            faults: None,
            screen: false,
            pools: PipelinePools::default(),
        }
    }

    /// Steering fans matching [`stap_core::SequentialStap::for_scenario`].
    pub fn for_scenario(params: StapParams, assign: NodeAssignment, scenario: &Scenario) -> Self {
        let steering = scenario
            .transmit_beams
            .iter()
            .map(|&c| {
                scenario
                    .geom
                    .beam_fan(c, scenario.beam_half_width_deg / 2.0, params.m_beams)
            })
            .collect();
        ResidentStap::new(params, assign, steering)
    }

    /// Sets the slot window (in-flight slots).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Sets the per-slot coalescing bound.
    pub fn with_max_group(mut self, max_group: usize) -> Self {
        self.max_group = max_group.max(1);
        self
    }

    /// Installs a soft mailbox high-water mark on every rank.
    pub fn with_mailbox_high_water(mut self, high_water: usize) -> Self {
        self.mailbox_high_water = high_water;
        self
    }

    /// Installs a deterministic fault schedule for the next launch (the
    /// chaos harness and the supervisor's per-launch plans use this).
    pub fn with_faults(mut self, plan: stap_mp::FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Enables non-finite screening at the CFAR boundary with per-sub
    /// degraded attribution.
    pub fn with_screen(mut self, screen: bool) -> Self {
        self.screen = screen;
        self
    }

    /// Replaces the buffer pools with an existing (shared) set. The
    /// elastic scheduler threads one pool family through successive
    /// epochs so a rebalance does not re-warm every size class from
    /// cold.
    pub fn with_pools(mut self, pools: PipelinePools) -> Self {
        self.pools = pools;
        self
    }

    /// The shared buffer pools. The ingestion side draws raw CPI cubes
    /// from `pools().cx` so submission is allocation-free too.
    pub fn pools(&self) -> &PipelinePools {
        &self.pools
    }

    /// Demand-driven pool sizing: pre-warms every size class the
    /// resident hot path will draw from, for `streams` concurrent
    /// streams with `queue_depth` admitted-and-waiting CPIs each, so
    /// even the first slot is miss-free. Derives the exact block sizes
    /// from the partitions (the same index arithmetic the task loops
    /// use) and multiplies by the in-flight slot count. The batcher
    /// coalesces *partial* groups while streams ramp up or drain, and a
    /// `g < max_group` slot draws from smaller size classes than the
    /// steady-state full group — every group size up to the bound gets
    /// a transient allowance so ramp slots stay miss-free too.
    pub fn reserve(&self, streams: usize, queue_depth: usize) {
        let p = &self.params;
        let parts = Partitions::new(p, &self.assign);
        let b = self.max_group.min(streams.max(1)).max(1);
        let w = self.window + 2; // in-flight slots + assembly margin
        let mut cx: HashMap<usize, usize> = HashMap::new();
        let mut real: HashMap<usize, usize> = HashMap::new();
        fn add(m: &mut HashMap<usize, usize>, len: usize, count: usize) {
            if len > 0 {
                *m.entry(len.next_power_of_two()).or_default() += count;
            }
        }
        // Raw CPI cubes: one held per producer, up to `queue_depth`
        // admitted per stream, plus in-flight groups.
        let raw = p.k_range * p.j_channels * p.n_pulses;
        add(&mut cx, raw, streams * (queue_depth + 1) + b * w);
        let easy_bins = p.easy_bins();
        let hard_bins = p.hard_bins();
        for g in 1..=b {
            // Full groups are the steady state and need the whole
            // in-flight window; partial sizes are transient and only
            // need an assembly allowance (power-of-two classes merge
            // many of them with the full-group classes anyway).
            let n = if g == b { w } else { 2 };
            for kr in &parts.doppler_k {
                // Driver input slabs.
                add(&mut cx, g * kr.len() * p.j_channels * p.n_pulses, n);
                let ec = easy_cells_in(p, kr).len();
                let fc: usize = (0..p.num_segments())
                    .map(|s| hard_cells_in(p, s, kr).len())
                    .sum();
                for bins in &parts.easy_wt_bins {
                    add(&mut cx, g * bins.len() * ec * p.j_channels, n);
                }
                for bins in &parts.hard_wt_bins {
                    add(&mut cx, g * bins.len() * fc * 2 * p.j_channels, n);
                }
                for bins in &parts.easy_bf_bins {
                    add(&mut cx, g * bins.len() * kr.len() * p.j_channels, n);
                }
                for bins in &parts.hard_bf_bins {
                    add(&mut cx, g * bins.len() * kr.len() * 2 * p.j_channels, n);
                }
            }
            // Beamform -> PC blocks: per (BF node, PC node) natural-bin
            // overlap, exactly as the task loops compute `pc_mine`.
            for pc_bins in &parts.pc_bins {
                for idx in &parts.easy_bf_bins {
                    let mine = idx
                        .clone()
                        .filter(|&bn| pc_bins.contains(&easy_bins[bn]))
                        .count();
                    add(&mut cx, g * mine * p.m_beams * p.k_range, n);
                }
                for idx in &parts.hard_bf_bins {
                    let mine = idx
                        .clone()
                        .filter(|&bn| pc_bins.contains(&hard_bins[bn]))
                        .count();
                    add(&mut cx, g * mine * p.m_beams * p.k_range, n);
                }
                // PC -> CFAR real blocks.
                for cf in &parts.cfar_bins {
                    let ov = overlap(pc_bins, cf);
                    add(&mut real, g * ov.len() * p.m_beams * p.k_range, n);
                }
            }
        }
        for (cap, count) in cx {
            self.pools.cx.reserve(cap, count);
        }
        for (cap, count) in real {
            self.pools.real.reserve(cap, count);
        }
    }

    /// Runs the resident world until the `jobs` channel disconnects and
    /// every in-flight slot has drained. Each received `Vec<CpiJob>` is
    /// one slot group (1..=`max_group` CPIs, distinct or repeated
    /// streams); results stream out on `done` as slots complete.
    pub fn serve(
        &self,
        jobs: Receiver<Vec<CpiJob>>,
        done: Sender<CpiDone>,
    ) -> Result<ResidentSummary, PipelineError> {
        self.serve_with_state(jobs, done, ResidentState::default())
            .map(|(summary, _)| summary)
    }

    /// [`Self::serve`] with cross-session state carry: the stateful
    /// tasks (weight history rings, QR recursion, beamform weight
    /// FIFOs) start from `carry` — re-partitioned to this session's
    /// assignment — and the drained session's state comes back with the
    /// summary. This is the rebalance primitive: exporting under one
    /// assignment and importing under another is bit-identical to never
    /// having stopped.
    pub fn serve_with_state(
        &self,
        jobs: Receiver<Vec<CpiJob>>,
        done: Sender<CpiDone>,
        carry: ResidentState,
    ) -> Result<(ResidentSummary, ResidentState), PipelineError> {
        let t0 = Instant::now();
        let parts = Partitions::new(&self.params, &self.assign);
        let mut world: World<Msg> = World::new(self.assign.world_size());
        if self.mailbox_high_water > 0 {
            world = world.with_mailbox_high_water(self.mailbox_high_water);
        }
        if let Some(plan) = &self.faults {
            if !plan.is_empty() {
                world = world
                    .with_faults(plan.clone())
                    .with_corruptor(crate::fault::nan_corruptor());
            }
        }
        let ctx = ResCtx {
            params: &self.params,
            assign: &self.assign,
            parts: &parts,
            steering: &self.steering,
            pools: &self.pools,
            max_group: self.max_group,
            screen: self.screen,
            carry: &carry,
        };
        let ctx_ref = &ctx;
        let window = self.window.max(1);
        // mpsc endpoints are Send but not Sync; the SPMD closure is
        // shared by reference across ranks, so the driver arm takes
        // them out of a mutex (it runs exactly once).
        let jobs_cell = Mutex::new(Some(jobs));
        let done_cell = Mutex::new(Some(done));

        enum Res {
            Task(usize, TaskExit),
            Driver {
                health: PipelineHealth,
                cpis: u64,
                slots: u64,
            },
        }

        let results = world.try_run_collect(|mut comm| {
            let rank = comm.rank();
            match ctx_ref.assign.task_of_rank(rank) {
                Some((t @ DOPPLER, local)) => {
                    Res::Task(t, resident_doppler(ctx_ref, &mut comm, local))
                }
                Some((t @ EASY_WT, local)) => {
                    Res::Task(t, resident_easy_weight(ctx_ref, &mut comm, local))
                }
                Some((t @ HARD_WT, local)) => {
                    Res::Task(t, resident_hard_weight(ctx_ref, &mut comm, local))
                }
                Some((t @ EASY_BF, local)) => {
                    Res::Task(t, resident_easy_bf(ctx_ref, &mut comm, local))
                }
                Some((t @ HARD_BF, local)) => {
                    Res::Task(t, resident_hard_bf(ctx_ref, &mut comm, local))
                }
                Some((t @ PC, local)) => Res::Task(t, resident_pc(ctx_ref, &mut comm, local)),
                Some((t @ CFAR, local)) => Res::Task(t, resident_cfar(ctx_ref, &mut comm, local)),
                Some(_) => unreachable!("unknown task"),
                None => {
                    let jobs = jobs_cell
                        .lock()
                        .unwrap()
                        .take()
                        .expect("driver rank runs once");
                    let done = done_cell.lock().unwrap().take().expect("driver rank once");
                    let (health, cpis, slots) =
                        resident_driver(ctx_ref, &mut comm, window, jobs, done);
                    Res::Driver {
                        health,
                        cpis,
                        slots,
                    }
                }
            }
        })?;

        let mut summary = ResidentSummary::default();
        let mut state = ResidentState::default();
        for r in results {
            match r {
                Res::Task(t, exit) => {
                    summary.health.merge(&exit.health);
                    summary.busy[t] += exit.busy;
                    match exit.state {
                        TaskState::Stateless => {}
                        TaskState::EasyWt(m) => state.easy_history.extend(m),
                        TaskState::HardWt(m) => state.hard_r.extend(m),
                        TaskState::EasyBf(m) => state.easy_fifo.extend(m),
                        TaskState::HardBf(m) => state.hard_fifo.extend(m),
                    }
                }
                Res::Driver {
                    health,
                    cpis,
                    slots,
                } => {
                    summary.health.merge(&health);
                    summary.cpis = cpis;
                    summary.slots = slots;
                }
            }
        }
        summary.pool_cx = self.pools.cx.stats();
        summary.pool_real = self.pools.real.stats();
        summary.elapsed = t0.elapsed().as_secs_f64();
        Ok((summary, state))
    }
}

/// Shared read-only context for the resident task loops.
struct ResCtx<'a> {
    params: &'a StapParams,
    assign: &'a NodeAssignment,
    parts: &'a Partitions,
    steering: &'a [CMat],
    pools: &'a PipelinePools,
    max_group: usize,
    screen: bool,
    carry: &'a ResidentState,
}

/// Lazily-built per-group-size workspaces: slot groups are usually at
/// the `max_group` steady-state size, but ramp-up and the final tail
/// slot can be smaller; each distinct size allocates its workspace once
/// and reuses it for the rest of the session.
struct ByGroup<T> {
    slots: Vec<Option<T>>,
}

impl<T> ByGroup<T> {
    fn new(max: usize) -> Self {
        ByGroup {
            slots: (0..=max).map(|_| None).collect(),
        }
    }

    fn get(&mut self, b: usize, mk: impl FnOnce(usize) -> T) -> &mut T {
        self.slots[b].get_or_insert_with(|| mk(b))
    }
}

fn expect_grouped_cube(m: Msg) -> Option<(Arc<[SubCpi]>, CCube)> {
    match m.payload {
        Payload::Shutdown => None,
        Payload::Cube(c) => Some((m.group.expect("resident messages carry a group"), c)),
        other => panic!("resident: expected grouped Cube or Shutdown, got {other:?}"),
    }
}

fn expect_grouped_real(m: Msg) -> Option<(Arc<[SubCpi]>, RCube)> {
    match m.payload {
        Payload::Shutdown => None,
        Payload::Real(c) => Some((m.group.expect("resident messages carry a group"), c)),
        other => panic!("resident: expected grouped Real or Shutdown, got {other:?}"),
    }
}

/// Gathers one grouped Doppler fan-out block without per-element
/// div/mod index math: the loops run in output row-major order
/// `(sub, bin, row, channel)`, so the bytes match the closure-built
/// cube exactly while the hot path is pure pointer stepping.
fn gather_bins_block(
    pool: &SharedBufferPool<Cx>,
    stag: &CCube,
    b: usize,
    klen: usize,
    bins: &[usize],
    rows: &[usize],
    channels: usize,
) -> CCube {
    let nb = bins.len();
    let s = stag.as_slice();
    let [_, cdim, n] = stag.shape();
    let row_stride = cdim * n;
    let mut buf = pool.get(b * nb * rows.len() * channels);
    for u in 0..b {
        let sub0 = u * klen;
        for &bin in bins {
            for &row in rows {
                let base = (sub0 + row) * row_stride + bin;
                for ch in 0..channels {
                    buf.push(s[base + ch * n]);
                }
            }
        }
    }
    CCube::from_vec([b * nb, rows.len(), channels], buf)
}

/// Gathers whole `[d1, d2]` planes of `src` (the BF→PC and PC→CFAR
/// blocks keep their two inner axes intact): each output row is one
/// contiguous slice copy. `src_row(sub, o)` names the source plane for
/// output row `sub * out_rows + o`.
fn gather_plane_rows<T: Copy + Default>(
    pool: &SharedBufferPool<T>,
    src: &Cube<T>,
    b: usize,
    out_rows: usize,
    mut src_row: impl FnMut(usize, usize) -> usize,
) -> Cube<T> {
    let [_, d1, d2] = src.shape();
    let plane = d1 * d2;
    let s = src.as_slice();
    let mut buf = pool.get(b * out_rows * plane);
    for u in 0..b {
        for o in 0..out_rows {
            let r = src_row(u, o);
            buf.extend_from_slice(&s[r * plane..(r + 1) * plane]);
        }
    }
    Cube::from_vec([b * out_rows, d1, d2], buf)
}

/// Resident Doppler (task 0): one grouped slab in, one batched FFT pass
/// over the whole group, four grouped redistribution blocks out.
fn resident_doppler(ctx: &ResCtx, comm: &mut Comm<Msg>, local: usize) -> TaskExit {
    let p = ctx.params;
    let my_k = ctx.parts.doppler_k[local].clone();
    let (k0, klen) = (my_k.start, my_k.len());
    let proc = DopplerProcessor::new(p);
    let driver = ctx.assign.driver_rank();
    let easy_bins = p.easy_bins();
    let hard_bins = p.hard_bins();
    let pool = &ctx.pools.cx;
    let easy_cells = easy_cells_in(p, &my_k);
    let flat_cells: Vec<usize> = (0..p.num_segments())
        .flat_map(|s| hard_cells_in(p, s, &my_k))
        .collect();
    // Row offsets (within one sub-CPI's stagger slab) for the gather
    // helpers, precomputed so the slot loop does no index arithmetic
    // beyond pointer stepping.
    let easy_rows: Vec<usize> = easy_cells.iter().map(|&c| c - k0).collect();
    let flat_rows: Vec<usize> = flat_cells.iter().map(|&c| c - k0).collect();
    let all_rows: Vec<usize> = (0..klen).collect();
    let mut stag_by = ByGroup::<CCube>::new(ctx.max_group);
    let mut fft_ws = FftScratch::new();
    let mut health = PipelineHealth::default();
    let mut busy = 0.0f64;
    let mut slot = 0usize;
    loop {
        sample_mailbox(comm, &mut health);
        comm.fault_checkpoint(slot as u64);
        let m = comm.recv(driver, tag(Edge::Input, slot)).unwrap();
        let t_busy = Instant::now();
        let Some((group, slab)) = expect_grouped_cube(m) else {
            // Cascade the shutdown on all four out-edges.
            for (q, _) in ctx.parts.easy_wt_bins.iter().enumerate() {
                let dst = ctx.assign.rank_range(EASY_WT).start + q;
                comm.send(
                    dst,
                    tag(Edge::DopplerToEasyWt, slot),
                    Msg::new(slot, Payload::Shutdown),
                );
            }
            for (q, _) in ctx.parts.hard_wt_bins.iter().enumerate() {
                let dst = ctx.assign.rank_range(HARD_WT).start + q;
                comm.send(
                    dst,
                    tag(Edge::DopplerToHardWt, slot),
                    Msg::new(slot, Payload::Shutdown),
                );
            }
            for (r, _) in ctx.parts.easy_bf_bins.iter().enumerate() {
                let dst = ctx.assign.rank_range(EASY_BF).start + r;
                comm.send(
                    dst,
                    tag(Edge::DopplerToEasyBf, slot),
                    Msg::new(slot, Payload::Shutdown),
                );
            }
            for (r, _) in ctx.parts.hard_bf_bins.iter().enumerate() {
                let dst = ctx.assign.rank_range(HARD_BF).start + r;
                comm.send(
                    dst,
                    tag(Edge::DopplerToHardBf, slot),
                    Msg::new(slot, Payload::Shutdown),
                );
            }
            break;
        };
        let b = group.len();
        let stag = stag_by.get(b, |b| {
            CCube::zeros([b * klen, 2 * p.j_channels, p.n_pulses])
        });
        // The perf core: ALL group members' FFT lanes through one
        // batched forward pass.
        proc.process_groups_with(&slab, k0, b, stag, &mut fft_ws);
        pool.recycle(slab);

        for (q, bins_idx) in ctx.parts.easy_wt_bins.iter().enumerate() {
            let block = gather_bins_block(
                pool,
                stag,
                b,
                klen,
                &easy_bins[bins_idx.clone()],
                &easy_rows,
                p.j_channels,
            );
            let dst = ctx.assign.rank_range(EASY_WT).start + q;
            comm.send(
                dst,
                tag(Edge::DopplerToEasyWt, slot),
                Msg::grouped(slot, group.clone(), Payload::Cube(block)),
            );
        }
        for (q, bins_idx) in ctx.parts.hard_wt_bins.iter().enumerate() {
            let block = gather_bins_block(
                pool,
                stag,
                b,
                klen,
                &hard_bins[bins_idx.clone()],
                &flat_rows,
                2 * p.j_channels,
            );
            let dst = ctx.assign.rank_range(HARD_WT).start + q;
            comm.send(
                dst,
                tag(Edge::DopplerToHardWt, slot),
                Msg::grouped(slot, group.clone(), Payload::Cube(block)),
            );
        }
        for (r, bins_idx) in ctx.parts.easy_bf_bins.iter().enumerate() {
            let block = gather_bins_block(
                pool,
                stag,
                b,
                klen,
                &easy_bins[bins_idx.clone()],
                &all_rows,
                p.j_channels,
            );
            let dst = ctx.assign.rank_range(EASY_BF).start + r;
            comm.send(
                dst,
                tag(Edge::DopplerToEasyBf, slot),
                Msg::grouped(slot, group.clone(), Payload::Cube(block)),
            );
        }
        for (r, bins_idx) in ctx.parts.hard_bf_bins.iter().enumerate() {
            let block = gather_bins_block(
                pool,
                stag,
                b,
                klen,
                &hard_bins[bins_idx.clone()],
                &all_rows,
                2 * p.j_channels,
            );
            let dst = ctx.assign.rank_range(HARD_BF).start + r;
            comm.send(
                dst,
                tag(Edge::DopplerToHardBf, slot),
                Msg::grouped(slot, group.clone(), Payload::Cube(block)),
            );
        }
        busy += t_busy.elapsed().as_secs_f64();
        slot += 1;
    }
    health.mailbox_over_high_water = comm.mailbox_stats().over_high_water;
    TaskExit::stateless(health, busy)
}

/// Receives one grouped block per Doppler node; `None` means shutdown
/// (remaining Doppler shutdowns drained).
fn recv_doppler_blocks(
    comm: &mut Comm<Msg>,
    dop0: usize,
    p0: usize,
    edge: Edge,
    slot: usize,
    blocks: &mut Vec<CCube>,
) -> Option<Arc<[SubCpi]>> {
    let mut group: Option<Arc<[SubCpi]>> = None;
    for dp in 0..p0 {
        let m = comm.recv(dop0 + dp, tag(edge, slot)).unwrap();
        match expect_grouped_cube(m) {
            Some((g, c)) => {
                group.get_or_insert(g);
                blocks.push(c);
            }
            None => {
                for dp2 in dp + 1..p0 {
                    let m2 = comm.recv(dop0 + dp2, tag(edge, slot)).unwrap();
                    assert!(
                        matches!(m2.payload, Payload::Shutdown),
                        "mixed shutdown/data within a slot"
                    );
                }
                return None;
            }
        }
    }
    Some(group.expect("at least one Doppler node"))
}

/// Rebuilds a node-local `(stream, beam) -> queue of per-bin entries`
/// map from globally-keyed carried state: picks this node's `bins_idx`
/// slice and re-zips the per-bin queues back into per-slot-entry rows
/// (inner `Vec` indexed by local bin), preserving queue order exactly.
fn import_ring<T: Clone>(
    carried: &HashMap<(u16, usize, usize), VecDeque<T>>,
    bins_idx: &Range<usize>,
) -> HashMap<(u16, usize), VecDeque<Vec<T>>> {
    let nbins = bins_idx.len();
    let mut out: HashMap<(u16, usize), VecDeque<Vec<T>>> = HashMap::new();
    let keys: std::collections::HashSet<(u16, usize)> = carried
        .keys()
        .filter(|(_, _, g)| bins_idx.contains(g))
        .map(|&(s, b, _)| (s, b))
        .collect();
    for (stream, beam) in keys {
        let len = carried
            .get(&(stream, beam, bins_idx.start))
            .map_or(0, VecDeque::len);
        let mut q: VecDeque<Vec<T>> = (0..len).map(|_| Vec::with_capacity(nbins)).collect();
        for bin in bins_idx.clone() {
            let d = carried
                .get(&(stream, beam, bin))
                .expect("carried state covers every bin of a (stream, beam)");
            assert_eq!(d.len(), len, "ragged carried queue");
            for (qi, item) in d.iter().enumerate() {
                q[qi].push(item.clone());
            }
        }
        out.insert((stream, beam), q);
    }
    out
}

/// Inverse of [`import_ring`]: unzips each `(stream, beam)` queue into
/// per-bin queues rebased to global bin keys (`bin0` = this node's
/// partition start).
fn export_ring<T>(
    rings: HashMap<(u16, usize), VecDeque<Vec<T>>>,
    bin0: usize,
) -> HashMap<(u16, usize, usize), VecDeque<T>> {
    let mut out = HashMap::new();
    for ((stream, beam), q) in rings {
        let len = q.len();
        let mut per_bin: Vec<VecDeque<T>> = Vec::new();
        for entry in q {
            if per_bin.is_empty() {
                per_bin = entry.iter().map(|_| VecDeque::with_capacity(len)).collect();
            }
            for (bi, item) in entry.into_iter().enumerate() {
                per_bin[bi].push_back(item);
            }
        }
        for (bi, d) in per_bin.into_iter().enumerate() {
            out.insert((stream, beam, bin0 + bi), d);
        }
    }
    out
}

/// Resident easy weight (task 1): per-(stream, beam) history rings,
/// weights for every member CPI of every slot, one grouped weight
/// message per overlapping BF node per slot.
fn resident_easy_weight(ctx: &ResCtx, comm: &mut Comm<Msg>, local: usize) -> TaskExit {
    let p = ctx.params;
    let bins_idx = ctx.parts.easy_wt_bins[local].clone();
    let nbins = bins_idx.len();
    let p0 = ctx.assign.nodes(DOPPLER);
    let dop0 = ctx.assign.rank_range(DOPPLER).start;
    let beams = ctx.steering.len();
    let constraint = CMat::identity(p.j_channels);
    let total_cells = easy_training_cells(p).len();
    // Destination BF nodes with their bin overlaps (slot-invariant).
    let bf0 = ctx.assign.rank_range(EASY_BF).start;
    let targets: Vec<(usize, Range<usize>)> = ctx
        .parts
        .easy_bf_bins
        .iter()
        .enumerate()
        .filter_map(|(r, bf_bins)| {
            let ov = overlap(&bins_idx, bf_bins);
            (!ov.is_empty()).then_some((bf0 + r, ov))
        })
        .collect();
    let mut history: HashMap<(u16, usize), VecDeque<Vec<CMat>>> =
        import_ring(&ctx.carry.easy_history, &bins_idx);
    let mut spares: Vec<Vec<CMat>> = Vec::new();
    let mut blocks: Vec<CCube> = Vec::with_capacity(p0);
    let mut health = PipelineHealth::default();
    let mut busy = 0.0f64;
    let mut slot = 0usize;
    loop {
        sample_mailbox(comm, &mut health);
        comm.fault_checkpoint(slot as u64);
        blocks.clear();
        let Some(group) =
            recv_doppler_blocks(comm, dop0, p0, Edge::DopplerToEasyWt, slot, &mut blocks)
        else {
            for (dst, _) in &targets {
                comm.send(
                    *dst,
                    tag(Edge::EasyWtToEasyBf, slot),
                    Msg::new(slot, Payload::Shutdown),
                );
            }
            break;
        };
        let t_busy = Instant::now();
        let b = group.len();
        let mut per_node: Vec<Vec<CMat>> = targets
            .iter()
            .map(|(_, ov)| Vec::with_capacity(b * ov.len()))
            .collect();
        for (u, sub) in group.iter().enumerate() {
            let mut snaps = spares.pop().unwrap_or_else(|| {
                (0..nbins)
                    .map(|_| CMat::zeros(total_cells, p.j_channels))
                    .collect()
            });
            let mut row = 0usize;
            for block in &blocks {
                let cells = block.shape()[1];
                for (bi, snap) in snaps.iter_mut().enumerate() {
                    for ci in 0..cells {
                        for ch in 0..p.j_channels {
                            snap[(row + ci, ch)] = block[(u * nbins + bi, ci, ch)].conj();
                        }
                    }
                }
                row += cells;
            }
            debug_assert_eq!(row, total_cells);
            let beam = sub.scpi as usize % beams;
            let q = history.entry((sub.stream, beam)).or_default();
            q.push_back(snaps);
            while q.len() > p.easy_history {
                if let Some(s) = q.pop_front() {
                    spares.push(s);
                }
            }
            let steering = &ctx.steering[beam];
            let weights: Vec<CMat> = (0..nbins)
                .map(|bi| {
                    let mut stacked = q[0][bi].clone();
                    for older in q.iter().skip(1) {
                        stacked = stacked.vstack(&older[bi]);
                    }
                    let k = mean_abs(&stacked) * p.beam_constraint_wt;
                    constrained_lstsq(&stacked, &constraint, k, steering)
                })
                .collect();
            for (i, (_, ov)) in targets.iter().enumerate() {
                per_node[i].extend(ov.clone().map(|bn| weights[bn - bins_idx.start].clone()));
            }
        }
        for block in blocks.drain(..) {
            ctx.pools.cx.recycle(block);
        }
        for ((dst, _), w) in targets.iter().zip(per_node) {
            comm.send(
                *dst,
                tag(Edge::EasyWtToEasyBf, slot),
                Msg::grouped(slot, group.clone(), Payload::Weights(w)),
            );
        }
        busy += t_busy.elapsed().as_secs_f64();
        slot += 1;
    }
    health.mailbox_over_high_water = comm.mailbox_stats().over_high_water;
    TaskExit {
        health,
        busy,
        state: TaskState::EasyWt(export_ring(history, bins_idx.start)),
    }
}

/// Resident hard weight (task 2): QR recursion state keyed
/// (stream, beam, bin, segment).
fn resident_hard_weight(ctx: &ResCtx, comm: &mut Comm<Msg>, local: usize) -> TaskExit {
    let p = ctx.params;
    let bins_idx = ctx.parts.hard_wt_bins[local].clone();
    let nbins = bins_idx.len();
    let hard_bins = p.hard_bins();
    let p0 = ctx.assign.nodes(DOPPLER);
    let dop0 = ctx.assign.rank_range(DOPPLER).start;
    let beams = ctx.steering.len();
    let jj = 2 * p.j_channels;
    let segs = p.num_segments();
    let bf0 = ctx.assign.rank_range(HARD_BF).start;
    let targets: Vec<(usize, Range<usize>)> = ctx
        .parts
        .hard_bf_bins
        .iter()
        .enumerate()
        .filter_map(|(r, bf_bins)| {
            let ov = overlap(&bins_idx, bf_bins);
            (!ov.is_empty()).then_some((bf0 + r, ov))
        })
        .collect();
    // Node-local QR state, keyed by LOCAL bin index; imported from the
    // carried global-keyed state and rebased back on export.
    let mut r_state: HashMap<(u16, usize, usize, usize), CMat> = ctx
        .carry
        .hard_r
        .iter()
        .filter(|((_, _, bin, _), _)| bins_idx.contains(bin))
        .map(|(&(s, bm, bin, seg), m)| ((s, bm, bin - bins_idx.start, seg), m.clone()))
        .collect();
    let seg_cells: Vec<usize> = (0..segs)
        .map(|s| stap_core::training::hard_training_cells(p, s).len())
        .collect();
    let dp_counts: Vec<Vec<usize>> = (0..p0)
        .map(|dp| {
            let kr = ctx.parts.doppler_k[dp].clone();
            (0..segs).map(|s| hard_cells_in(p, s, &kr).len()).collect()
        })
        .collect();
    // Per-sub snapshot scratch, fully overwritten for each member CPI.
    let mut snapshots: Vec<Vec<CMat>> = (0..nbins)
        .map(|_| (0..segs).map(|s| CMat::zeros(seg_cells[s], jj)).collect())
        .collect();
    let mut seg_rows = vec![0usize; segs];
    let mut blocks: Vec<CCube> = Vec::with_capacity(p0);
    let mut health = PipelineHealth::default();
    let mut busy = 0.0f64;
    let mut slot = 0usize;
    loop {
        sample_mailbox(comm, &mut health);
        comm.fault_checkpoint(slot as u64);
        blocks.clear();
        let Some(group) =
            recv_doppler_blocks(comm, dop0, p0, Edge::DopplerToHardWt, slot, &mut blocks)
        else {
            for (dst, _) in &targets {
                comm.send(
                    *dst,
                    tag(Edge::HardWtToHardBf, slot),
                    Msg::new(slot, Payload::Shutdown),
                );
            }
            break;
        };
        let t_busy = Instant::now();
        let b = group.len();
        let mut per_node: Vec<Vec<CMat>> = targets
            .iter()
            .map(|(_, ov)| Vec::with_capacity(b * ov.len() * segs))
            .collect();
        for (u, sub) in group.iter().enumerate() {
            seg_rows.iter_mut().for_each(|r| *r = 0);
            for (block, counts) in blocks.iter().zip(&dp_counts) {
                let mut ci = 0usize;
                for (s, &cnt) in counts.iter().enumerate() {
                    for c in 0..cnt {
                        for (bi, snap) in snapshots.iter_mut().enumerate() {
                            for ch in 0..jj {
                                snap[s][(seg_rows[s] + c, ch)] =
                                    block[(u * nbins + bi, ci + c, ch)].conj();
                            }
                        }
                    }
                    seg_rows[s] += cnt;
                    ci += cnt;
                }
            }
            let beam = sub.scpi as usize % beams;
            let steering = &ctx.steering[beam];
            let mut weights: Vec<CMat> = Vec::with_capacity(nbins * segs);
            for bi in 0..nbins {
                let bin = hard_bins[bins_idx.start + bi];
                let constraint = hard_constraint(p, bin);
                for (s, snap) in snapshots[bi].iter().enumerate() {
                    let r_prev = r_state
                        .entry((sub.stream, beam, bi, s))
                        .or_insert_with(|| CMat::zeros(jj, jj));
                    let r_new = qr_update(r_prev, p.forgetting_factor, snap);
                    let k = mean_abs(snap) * p.beam_constraint_wt;
                    let w = constrained_lstsq_from_r(&r_new, &constraint, k, steering);
                    *r_prev = r_new;
                    weights.push(w);
                }
            }
            for (i, (_, ov)) in targets.iter().enumerate() {
                for bn in ov.clone() {
                    let base = (bn - bins_idx.start) * segs;
                    per_node[i].extend(weights[base..base + segs].iter().cloned());
                }
            }
        }
        for block in blocks.drain(..) {
            ctx.pools.cx.recycle(block);
        }
        for ((dst, _), w) in targets.iter().zip(per_node) {
            comm.send(
                *dst,
                tag(Edge::HardWtToHardBf, slot),
                Msg::grouped(slot, group.clone(), Payload::Weights(w)),
            );
        }
        busy += t_busy.elapsed().as_secs_f64();
        slot += 1;
    }
    health.mailbox_over_high_water = comm.mailbox_stats().over_high_water;
    TaskExit {
        health,
        busy,
        state: TaskState::HardWt(
            r_state
                .into_iter()
                .map(|((s, bm, bi, seg), m)| ((s, bm, bins_idx.start + bi, seg), m))
                .collect(),
        ),
    }
}

/// Resident easy beamform (task 3): per-(stream, beam) weight FIFOs,
/// push-then-consume per slot.
fn resident_easy_bf(ctx: &ResCtx, comm: &mut Comm<Msg>, local: usize) -> TaskExit {
    let p = ctx.params;
    let bins_idx = ctx.parts.easy_bf_bins[local].clone();
    let nbins = bins_idx.len();
    let easy_bins = p.easy_bins();
    let p0 = ctx.assign.nodes(DOPPLER);
    let dop0 = ctx.assign.rank_range(DOPPLER).start;
    let beams = ctx.steering.len();
    let pool = &ctx.pools.cx;
    let wt_sources = weight_sources(
        &ctx.parts.easy_wt_bins,
        &bins_idx,
        ctx.assign.rank_range(EASY_WT).start,
    );
    let pc_mine: Vec<Vec<usize>> = ctx
        .parts
        .pc_bins
        .iter()
        .map(|pc_bins| {
            bins_idx
                .clone()
                .filter(|&bn| pc_bins.contains(&easy_bins[bn]))
                .collect()
        })
        .collect();
    let mut data_by = ByGroup::<CCube>::new(ctx.max_group);
    let mut out_by = ByGroup::<CCube>::new(ctx.max_group);
    let mut slab = CMat::zeros(p.j_channels, p.k_range);
    let mut y = CMat::zeros(p.m_beams, p.k_range);
    let mut fifo: HashMap<(u16, usize), VecDeque<Vec<CMat>>> =
        import_ring(&ctx.carry.easy_fifo, &bins_idx);
    let mut health = PipelineHealth::default();
    let mut busy = 0.0f64;
    let mut slot = 0usize;
    'outer: loop {
        sample_mailbox(comm, &mut health);
        comm.fault_checkpoint(slot as u64);
        let mut group: Option<Arc<[SubCpi]>> = None;
        let mut first = true;
        for dp in 0..p0 {
            let m = comm
                .recv(dop0 + dp, tag(Edge::DopplerToEasyBf, slot))
                .unwrap();
            match expect_grouped_cube(m) {
                Some((g, block)) => {
                    let b = g.len();
                    if first {
                        first = false;
                        group = Some(g);
                        // Touch the workspaces so they exist for this size.
                        data_by.get(b, |b| CCube::zeros([b * nbins, p.k_range, p.j_channels]));
                        out_by.get(b, |b| CCube::zeros([b * nbins, p.m_beams, p.k_range]));
                    }
                    let data = data_by.slots[b].as_mut().unwrap();
                    let k0 = ctx.parts.doppler_k[dp].start;
                    data.place([0, k0, 0], &block);
                    pool.recycle(block);
                }
                None => {
                    // Remaining Doppler shutdowns were drained; drain the
                    // weight-edge shutdowns, cascade to PC and exit.
                    for (src, _) in &wt_sources {
                        let m2 = comm.recv(*src, tag(Edge::EasyWtToEasyBf, slot)).unwrap();
                        assert!(matches!(m2.payload, Payload::Shutdown));
                    }
                    for (t, _) in pc_mine.iter().enumerate() {
                        let dst = ctx.assign.rank_range(PC).start + t;
                        comm.send(
                            dst,
                            tag(Edge::EasyBfToPc, slot),
                            Msg::new(slot, Payload::Shutdown),
                        );
                    }
                    break 'outer;
                }
            }
        }
        let group = group.expect("at least one Doppler node");
        let t_busy = Instant::now();
        let b = group.len();
        let data = data_by.slots[b].as_mut().unwrap();
        let out = out_by.slots[b].as_mut().unwrap();

        // Push phase: assemble each member CPI's freshly-computed
        // per-bin weight set from the slot's weight messages and file it
        // in that member's (stream, beam) FIFO.
        let mut pushed: Vec<Vec<Option<CMat>>> = (0..b).map(|_| vec![None; nbins]).collect();
        for (src, ov) in &wt_sources {
            let m = comm.recv(*src, tag(Edge::EasyWtToEasyBf, slot)).unwrap();
            let w = expect_weights(m.payload);
            let ol = ov.len();
            debug_assert_eq!(w.len(), b * ol);
            for (u, sub_w) in w.chunks(ol).enumerate() {
                for (i, bn) in ov.clone().enumerate() {
                    pushed[u][bn - bins_idx.start] = Some(sub_w[i].clone());
                }
            }
        }
        for (u, pb) in pushed.into_iter().enumerate() {
            let sub = group[u];
            let beam = sub.scpi as usize % beams;
            let set: Vec<CMat> = pb
                .into_iter()
                .map(|w| w.expect("missing weights from overlap source"))
                .collect();
            fifo.entry((sub.stream, beam)).or_default().push_back(set);
        }

        // Consume phase: beamform each member with the weights computed
        // from its own stream's CPI `scpi - beams` (quiescent before the
        // first revisit), exactly the per-stream serial schedule.
        for (u, sub) in group.iter().enumerate() {
            let beam = sub.scpi as usize % beams;
            let weights: Vec<CMat> = if (sub.scpi as usize) < beams {
                vec![normalize_columns(ctx.steering[beam].clone()); nbins]
            } else {
                fifo.get_mut(&(sub.stream, beam))
                    .and_then(VecDeque::pop_front)
                    .expect("weight FIFO underflow: streams must submit CPIs in order")
            };
            for bi in 0..nbins {
                slab.fill_from_fn(|ch, kc| data[(u * nbins + bi, kc, ch)]);
                weights[bi].hermitian_matmul_into(&slab, &mut y);
                for m in 0..p.m_beams {
                    out.lane_mut(u * nbins + bi, m).copy_from_slice(y.row(m));
                }
            }
        }

        for (t, mine) in pc_mine.iter().enumerate() {
            let ml = mine.len();
            let block = gather_plane_rows(pool, out, b, ml, |u, o| {
                u * nbins + mine[o] - bins_idx.start
            });
            let dst = ctx.assign.rank_range(PC).start + t;
            comm.send(
                dst,
                tag(Edge::EasyBfToPc, slot),
                Msg::grouped(slot, group.clone(), Payload::Cube(block)),
            );
        }
        busy += t_busy.elapsed().as_secs_f64();
        slot += 1;
    }
    health.mailbox_over_high_water = comm.mailbox_stats().over_high_water;
    TaskExit {
        health,
        busy,
        state: TaskState::EasyBf(export_ring(fifo, bins_idx.start)),
    }
}

/// Resident hard beamform (task 4): per-(bin, segment) weight sets in
/// per-(stream, beam) FIFOs.
fn resident_hard_bf(ctx: &ResCtx, comm: &mut Comm<Msg>, local: usize) -> TaskExit {
    let p = ctx.params;
    let bins_idx = ctx.parts.hard_bf_bins[local].clone();
    let nbins = bins_idx.len();
    let hard_bins = p.hard_bins();
    let p0 = ctx.assign.nodes(DOPPLER);
    let dop0 = ctx.assign.rank_range(DOPPLER).start;
    let beams = ctx.steering.len();
    let jj = 2 * p.j_channels;
    let segs = p.num_segments();
    let pool = &ctx.pools.cx;
    let wt_sources = weight_sources(
        &ctx.parts.hard_wt_bins,
        &bins_idx,
        ctx.assign.rank_range(HARD_WT).start,
    );
    let pc_mine: Vec<Vec<usize>> = ctx
        .parts
        .pc_bins
        .iter()
        .map(|pc_bins| {
            bins_idx
                .clone()
                .filter(|&bn| pc_bins.contains(&hard_bins[bn]))
                .collect()
        })
        .collect();
    let seg_ranges: Vec<Range<usize>> = (0..segs).map(|s| p.segment_range(s)).collect();
    let mut data_by = ByGroup::<CCube>::new(ctx.max_group);
    let mut out_by = ByGroup::<CCube>::new(ctx.max_group);
    let mut slabs: Vec<CMat> = seg_ranges
        .iter()
        .map(|r| CMat::zeros(jj, r.len()))
        .collect();
    let mut ys: Vec<CMat> = seg_ranges
        .iter()
        .map(|r| CMat::zeros(p.m_beams, r.len()))
        .collect();
    let mut fifo: HashMap<(u16, usize), VecDeque<Vec<Vec<CMat>>>> =
        import_ring(&ctx.carry.hard_fifo, &bins_idx);
    let mut health = PipelineHealth::default();
    let mut busy = 0.0f64;
    let mut slot = 0usize;

    let quiescent = |beam: usize| -> Vec<Vec<CMat>> {
        bins_idx
            .clone()
            .map(|bn| {
                let bin = hard_bins[bn];
                let phase = Cx::cis(
                    2.0 * std::f64::consts::PI * bin as f64 * p.stagger as f64 / p.n_pulses as f64,
                );
                let s = &ctx.steering[beam];
                let w = CMat::from_fn(jj, p.m_beams, |r, c| {
                    if r < p.j_channels {
                        s[(r, c)]
                    } else {
                        s[(r - p.j_channels, c)] * phase
                    }
                });
                vec![normalize_columns(w); segs]
            })
            .collect()
    };

    'outer: loop {
        sample_mailbox(comm, &mut health);
        comm.fault_checkpoint(slot as u64);
        let mut group: Option<Arc<[SubCpi]>> = None;
        let mut first = true;
        for dp in 0..p0 {
            let m = comm
                .recv(dop0 + dp, tag(Edge::DopplerToHardBf, slot))
                .unwrap();
            match expect_grouped_cube(m) {
                Some((g, block)) => {
                    let b = g.len();
                    if first {
                        first = false;
                        group = Some(g);
                        data_by.get(b, |b| CCube::zeros([b * nbins, p.k_range, jj]));
                        out_by.get(b, |b| CCube::zeros([b * nbins, p.m_beams, p.k_range]));
                    }
                    let data = data_by.slots[b].as_mut().unwrap();
                    let k0 = ctx.parts.doppler_k[dp].start;
                    data.place([0, k0, 0], &block);
                    pool.recycle(block);
                }
                None => {
                    for (src, _) in &wt_sources {
                        let m2 = comm.recv(*src, tag(Edge::HardWtToHardBf, slot)).unwrap();
                        assert!(matches!(m2.payload, Payload::Shutdown));
                    }
                    for (t, _) in pc_mine.iter().enumerate() {
                        let dst = ctx.assign.rank_range(PC).start + t;
                        comm.send(
                            dst,
                            tag(Edge::HardBfToPc, slot),
                            Msg::new(slot, Payload::Shutdown),
                        );
                    }
                    break 'outer;
                }
            }
        }
        let group = group.expect("at least one Doppler node");
        let t_busy = Instant::now();
        let b = group.len();
        let data = data_by.slots[b].as_mut().unwrap();
        let out = out_by.slots[b].as_mut().unwrap();

        let mut pushed: Vec<Vec<Option<Vec<CMat>>>> = (0..b).map(|_| vec![None; nbins]).collect();
        for (src, ov) in &wt_sources {
            let m = comm.recv(*src, tag(Edge::HardWtToHardBf, slot)).unwrap();
            let w = expect_weights(m.payload);
            let ol = ov.len();
            debug_assert_eq!(w.len(), b * ol * segs);
            for (u, sub_w) in w.chunks(ol * segs).enumerate() {
                for (i, bn) in ov.clone().enumerate() {
                    pushed[u][bn - bins_idx.start] = Some(sub_w[i * segs..(i + 1) * segs].to_vec());
                }
            }
        }
        for (u, pb) in pushed.into_iter().enumerate() {
            let sub = group[u];
            let beam = sub.scpi as usize % beams;
            let set: Vec<Vec<CMat>> = pb
                .into_iter()
                .map(|w| w.expect("missing weights from overlap source"))
                .collect();
            fifo.entry((sub.stream, beam)).or_default().push_back(set);
        }

        for (u, sub) in group.iter().enumerate() {
            let beam = sub.scpi as usize % beams;
            let weights: Vec<Vec<CMat>> = if (sub.scpi as usize) < beams {
                quiescent(beam)
            } else {
                fifo.get_mut(&(sub.stream, beam))
                    .and_then(VecDeque::pop_front)
                    .expect("weight FIFO underflow: streams must submit CPIs in order")
            };
            for bi in 0..nbins {
                for seg in 0..segs {
                    let r = &seg_ranges[seg];
                    slabs[seg].fill_from_fn(|ch, kc| data[(u * nbins + bi, r.start + kc, ch)]);
                    weights[bi][seg].hermitian_matmul_into(&slabs[seg], &mut ys[seg]);
                    for m in 0..p.m_beams {
                        out.lane_mut(u * nbins + bi, m)[r.clone()].copy_from_slice(ys[seg].row(m));
                    }
                }
            }
        }

        for (t, mine) in pc_mine.iter().enumerate() {
            let ml = mine.len();
            let block = gather_plane_rows(pool, out, b, ml, |u, o| {
                u * nbins + mine[o] - bins_idx.start
            });
            let dst = ctx.assign.rank_range(PC).start + t;
            comm.send(
                dst,
                tag(Edge::HardBfToPc, slot),
                Msg::grouped(slot, group.clone(), Payload::Cube(block)),
            );
        }
        busy += t_busy.elapsed().as_secs_f64();
        slot += 1;
    }
    health.mailbox_over_high_water = comm.mailbox_stats().over_high_water;
    TaskExit {
        health,
        busy,
        state: TaskState::HardBf(export_ring(fifo, bins_idx.start)),
    }
}

/// Resident pulse compression (task 5): the whole slot group through
/// one `process_into_with` pass over the concatenated cube.
fn resident_pc(ctx: &ResCtx, comm: &mut Comm<Msg>, local: usize) -> TaskExit {
    let p = ctx.params;
    let my_bins = ctx.parts.pc_bins[local].clone();
    let ml = my_bins.len();
    let easy_bins = p.easy_bins();
    let hard_bins = p.hard_bins();
    let compressor = PulseCompressor::new(p);
    let mut feeders: Vec<(usize, Vec<usize>)> = Vec::new();
    for (r, idx) in ctx.parts.easy_bf_bins.iter().enumerate() {
        let bins: Vec<usize> = idx
            .clone()
            .map(|bn| easy_bins[bn])
            .filter(|bn| my_bins.contains(bn))
            .collect();
        feeders.push((ctx.assign.rank_range(EASY_BF).start + r, bins));
    }
    for (r, idx) in ctx.parts.hard_bf_bins.iter().enumerate() {
        let bins: Vec<usize> = idx
            .clone()
            .map(|bn| hard_bins[bn])
            .filter(|bn| my_bins.contains(bn))
            .collect();
        feeders.push((ctx.assign.rank_range(HARD_BF).start + r, bins));
    }
    let cfar_ov: Vec<Range<usize>> = ctx
        .parts
        .cfar_bins
        .iter()
        .map(|c| overlap(&my_bins, c))
        .collect();
    let mut data_by = ByGroup::<CCube>::new(ctx.max_group);
    let mut power_by = ByGroup::<RCube>::new(ctx.max_group);
    let mut pc_ws = PulseScratch::new();
    let mut health = PipelineHealth::default();
    let mut busy = 0.0f64;
    let mut slot = 0usize;
    'outer: loop {
        sample_mailbox(comm, &mut health);
        comm.fault_checkpoint(slot as u64);
        let mut group: Option<Arc<[SubCpi]>> = None;
        let mut first = true;
        for (fi, (src, bins)) in feeders.iter().enumerate() {
            let m = comm.recv(*src, tag(edge_for(ctx, *src), slot)).unwrap();
            match expect_grouped_cube(m) {
                Some((g, block)) => {
                    let b = g.len();
                    if first {
                        first = false;
                        group = Some(g);
                        data_by.get(b, |b| CCube::zeros([b * ml, p.m_beams, p.k_range]));
                        power_by.get(b, |b| RCube::zeros([b * ml, p.m_beams, p.k_range]));
                    }
                    let data = data_by.slots[b].as_mut().unwrap();
                    let bl = bins.len();
                    debug_assert_eq!(block.shape()[0], b * bl);
                    for u in 0..b {
                        for (i, &bn) in bins.iter().enumerate() {
                            for m in 0..p.m_beams {
                                data.lane_mut(u * ml + bn - my_bins.start, m)
                                    .copy_from_slice(block.lane(u * bl + i, m));
                            }
                        }
                    }
                    ctx.pools.cx.recycle(block);
                }
                None => {
                    for (src2, _) in feeders.iter().skip(fi + 1) {
                        let m2 = comm.recv(*src2, tag(edge_for(ctx, *src2), slot)).unwrap();
                        assert!(matches!(m2.payload, Payload::Shutdown));
                    }
                    for u in 0..ctx.parts.cfar_bins.len() {
                        let dst = ctx.assign.rank_range(CFAR).start + u;
                        comm.send(
                            dst,
                            tag(Edge::PcToCfar, slot),
                            Msg::new(slot, Payload::Shutdown),
                        );
                    }
                    break 'outer;
                }
            }
        }
        let group = group.expect("at least one feeder");
        let t_busy = Instant::now();
        let b = group.len();
        let data = data_by.slots[b].as_mut().unwrap();
        let power = power_by.slots[b].as_mut().unwrap();
        compressor.process_into_with(data, power, &mut pc_ws);
        for (u_cf, ov) in cfar_ov.iter().enumerate() {
            let ol = ov.len();
            let block = gather_plane_rows(&ctx.pools.real, power, b, ol, |u, o| {
                u * ml + ov.start + o - my_bins.start
            });
            let dst = ctx.assign.rank_range(CFAR).start + u_cf;
            comm.send(
                dst,
                tag(Edge::PcToCfar, slot),
                Msg::grouped(slot, group.clone(), Payload::Real(block)),
            );
        }
        busy += t_busy.elapsed().as_secs_f64();
        slot += 1;
    }
    health.mailbox_over_high_water = comm.mailbox_stats().over_high_water;
    TaskExit::stateless(health, busy)
}

/// Which BF->PC edge a sender rank uses (PC receives on two edges).
fn edge_for(ctx: &ResCtx, src: usize) -> Edge {
    if src < ctx.assign.rank_range(HARD_BF).start {
        Edge::EasyBfToPc
    } else {
        Edge::HardBfToPc
    }
}

/// Resident CFAR (task 6): per-member detection lists, one grouped
/// `DetectionsGroup` message to the driver per slot.
fn resident_cfar(ctx: &ResCtx, comm: &mut Comm<Msg>, local: usize) -> TaskExit {
    let p = ctx.params;
    let my_bins = ctx.parts.cfar_bins[local].clone();
    let ml = my_bins.len();
    let driver = ctx.assign.driver_rank();
    let feeders: Vec<(usize, Range<usize>)> = ctx
        .parts
        .pc_bins
        .iter()
        .enumerate()
        .map(|(t, r)| (ctx.assign.rank_range(PC).start + t, overlap(r, &my_bins)))
        .collect();
    let mut power_by = ByGroup::<RCube>::new(ctx.max_group);
    let mut scratch = cfar::CfarScratch::for_task(p, ml);
    let mut health = PipelineHealth::default();
    let mut busy = 0.0f64;
    let mut slot = 0usize;
    'outer: loop {
        sample_mailbox(comm, &mut health);
        comm.fault_checkpoint(slot as u64);
        let mut group: Option<Arc<[SubCpi]>> = None;
        let mut first = true;
        for (fi, (src, ov)) in feeders.iter().enumerate() {
            let m = comm.recv(*src, tag(Edge::PcToCfar, slot)).unwrap();
            match expect_grouped_real(m) {
                Some((g, block)) => {
                    let b = g.len();
                    if first {
                        first = false;
                        group = Some(g);
                        power_by.get(b, |b| RCube::zeros([b * ml, p.m_beams, p.k_range]));
                    }
                    let power = power_by.slots[b].as_mut().unwrap();
                    let ol = ov.len();
                    debug_assert_eq!(block.shape()[0], b * ol);
                    for u in 0..b {
                        for i in 0..ol {
                            for m in 0..p.m_beams {
                                power
                                    .lane_mut(u * ml + ov.start - my_bins.start + i, m)
                                    .copy_from_slice(block.lane(u * ol + i, m));
                            }
                        }
                    }
                    ctx.pools.real.recycle(block);
                }
                None => {
                    for (src2, _) in feeders.iter().skip(fi + 1) {
                        let m2 = comm.recv(*src2, tag(Edge::PcToCfar, slot)).unwrap();
                        assert!(matches!(m2.payload, Payload::Shutdown));
                    }
                    break 'outer;
                }
            }
        }
        let group = group.expect("at least one PC node");
        let t_busy = Instant::now();
        let b = group.len();
        let power = power_by.slots[b].as_mut().unwrap();
        let mut per_sub: Vec<Vec<Detection>> = Vec::with_capacity(b);
        // Screening attributes non-finite power to the owning sub-CPI:
        // each member's lanes are disjoint rows of the slot cube, so a
        // poisoned tenant degrades its own CPI, never its slot-mates'.
        let mut mask: Vec<bool> = Vec::new();
        for u in 0..b {
            scratch.begin_cpi();
            let mut poisoned = false;
            for bi in 0..ml {
                for m in 0..p.m_beams {
                    let lane = power.lane(u * ml + bi, m);
                    if ctx.screen && !lane.iter().all(|v| v.is_finite()) {
                        poisoned = true;
                    }
                    cfar::cfar_lane(p, lane, my_bins.start + bi, m, &mut scratch.detections);
                }
            }
            if ctx.screen {
                mask.push(poisoned);
            }
            per_sub.push(scratch.take());
        }
        comm.send(
            driver,
            tag(Edge::Output, slot),
            Msg::grouped(slot, group.clone(), Payload::DetectionsGroup(per_sub, mask)),
        );
        busy += t_busy.elapsed().as_secs_f64();
        slot += 1;
    }
    health.mailbox_over_high_water = comm.mailbox_stats().over_high_water;
    TaskExit::stateless(health, busy)
}

/// The driver arm of a resident session: windowed slot injection from
/// the jobs channel, completion collection, shutdown cascade.
fn resident_driver(
    ctx: &ResCtx,
    comm: &mut Comm<Msg>,
    window: usize,
    jobs: Receiver<Vec<CpiJob>>,
    done: Sender<CpiDone>,
) -> (PipelineHealth, u64, u64) {
    let p = ctx.params;
    let dop0 = ctx.assign.rank_range(DOPPLER).start;
    let cfar_ranks: Vec<usize> = ctx.assign.rank_range(CFAR).collect();
    let mut inflight: VecDeque<(Arc<[SubCpi]>, Vec<Instant>)> = VecDeque::with_capacity(window);
    let mut health = PipelineHealth::default();
    let mut next_slot = 0usize;
    let mut collected = 0usize;
    let mut cpis = 0u64;
    let mut open = true;
    while open || collected < next_slot {
        comm.fault_checkpoint(next_slot as u64);
        // Fill the window. Block for the first job only when nothing is
        // in flight; otherwise prefer draining completed slots.
        while open && next_slot - collected < window {
            let batch = if collected < next_slot {
                match jobs.try_recv() {
                    Ok(bt) => Some(bt),
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        open = false;
                        break;
                    }
                }
            } else {
                match jobs.recv() {
                    Ok(bt) => Some(bt),
                    Err(_) => {
                        open = false;
                        break;
                    }
                }
            };
            let Some(batch) = batch else { break };
            if batch.is_empty() {
                continue;
            }
            assert!(
                batch.len() <= ctx.max_group,
                "slot group of {} exceeds max_group {}",
                batch.len(),
                ctx.max_group
            );
            let b = batch.len();
            let group: Arc<[SubCpi]> = batch
                .iter()
                .map(|j| SubCpi {
                    stream: j.stream,
                    scpi: j.scpi,
                })
                .collect();
            let submitted: Vec<Instant> = batch.iter().map(|j| j.submitted).collect();
            for (pn, kr) in ctx.parts.doppler_k.iter().enumerate() {
                let klen = kr.len();
                // Axis 0 is the slowest axis, so each sub-CPI's k-slab is
                // one contiguous run: assemble the group slab with b slice
                // copies rather than an element-wise rebuild.
                let row = p.j_channels * p.n_pulses;
                let mut buf = ctx.pools.cx.get(b * klen * row);
                for job in &batch {
                    buf.extend_from_slice(&job.cube.as_slice()[kr.start * row..kr.end * row]);
                }
                let slab = CCube::from_vec([b * klen, p.j_channels, p.n_pulses], buf);
                comm.send(
                    dop0 + pn,
                    tag(Edge::Input, next_slot),
                    Msg::grouped(next_slot, group.clone(), Payload::Cube(slab)),
                );
            }
            for job in batch {
                ctx.pools.cx.recycle(job.cube);
            }
            inflight.push_back((group, submitted));
            next_slot += 1;
        }
        if collected < next_slot {
            sample_mailbox(comm, &mut health);
            let (group, submitted) = inflight.pop_front().unwrap();
            let b = group.len();
            let mut per_sub: Vec<Vec<Detection>> = (0..b).map(|_| Vec::new()).collect();
            let mut degraded = vec![false; b];
            for &src in &cfar_ranks {
                let m = comm.recv(src, tag(Edge::Output, collected)).unwrap();
                match m.payload {
                    Payload::DetectionsGroup(gs, mask) => {
                        debug_assert_eq!(gs.len(), b);
                        for (u, ds) in gs.into_iter().enumerate() {
                            per_sub[u].extend(ds);
                        }
                        for (u, &bad) in mask.iter().enumerate() {
                            degraded[u] |= bad;
                        }
                    }
                    other => panic!("resident driver: expected DetectionsGroup, got {other:?}"),
                }
            }
            let now = Instant::now();
            for (u, mut ds) in per_sub.into_iter().enumerate() {
                ds.sort_by_key(|d| (d.bin, d.beam, d.range));
                if degraded[u] {
                    health.degraded_cpis += 1;
                }
                // A closed `done` receiver is fine: keep draining.
                let _ = done.send(CpiDone {
                    stream: group[u].stream,
                    scpi: group[u].scpi,
                    detections: ds,
                    latency: now.duration_since(submitted[u]).as_secs_f64(),
                    degraded: degraded[u],
                });
            }
            cpis += b as u64;
            collected += 1;
        }
    }
    // Every slot drained: cascade the shutdown from the input edge.
    for pn in 0..ctx.parts.doppler_k.len() {
        comm.send(
            dop0 + pn,
            tag(Edge::Input, next_slot),
            Msg::new(next_slot, Payload::Shutdown),
        );
    }
    health.mailbox_over_high_water = comm.mailbox_stats().over_high_water;
    (health, cpis, next_slot as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ParallelStap;
    use std::sync::mpsc;

    /// Interleaved multi-stream resident processing must be
    /// bit-identical to running each stream through the batch pipeline
    /// on its own.
    #[test]
    fn interleaved_streams_match_per_stream_batch_runs() {
        let params = StapParams::reduced();
        let seeds = [11u64, 23u64, 47u64];
        let per_stream = 5usize;
        let scenarios: Vec<Scenario> = seeds.iter().map(|&s| Scenario::reduced(s)).collect();
        let streams: Vec<Vec<CCube>> = scenarios
            .iter()
            .map(|sc| sc.stream(per_stream).map(|(_, _, c)| c).collect())
            .collect();

        // Per-stream serial baselines (batch pipeline, same steering).
        let mut want: Vec<Vec<Vec<Detection>>> = Vec::new();
        for (sc, cubes) in scenarios.iter().zip(&streams) {
            let par = ParallelStap::for_scenario(params.clone(), NodeAssignment::tiny(), sc);
            want.push(par.run(cubes.clone()).detections);
        }

        // Resident run: one slot per CPI index carrying all three
        // streams' cubes (steering fans are per-scenario; use stream 0's
        // scenario for construction — all reduced scenarios share the
        // same transmit beams and geometry).
        let res = ResidentStap::for_scenario(params, NodeAssignment::tiny(), &scenarios[0])
            .with_max_group(seeds.len());
        res.reserve(seeds.len(), 1);
        let (jobs_tx, jobs_rx) = mpsc::sync_channel(4);
        let (done_tx, done_rx) = mpsc::channel();
        let pool = res.pools().cx.clone();
        let feeder = std::thread::spawn(move || {
            for scpi in 0..per_stream {
                let batch: Vec<CpiJob> = streams
                    .iter()
                    .enumerate()
                    .map(|(s, cubes)| {
                        let c = &cubes[scpi];
                        CpiJob {
                            stream: s as u16,
                            scpi: scpi as u32,
                            cube: pool.take_cube(c.shape(), |i, j, k| c[(i, j, k)]),
                            submitted: Instant::now(),
                        }
                    })
                    .collect();
                jobs_tx.send(batch).unwrap();
            }
        });
        let summary = res.serve(jobs_rx, done_tx).unwrap();
        feeder.join().unwrap();
        assert_eq!(summary.cpis as usize, seeds.len() * per_stream);
        assert_eq!(summary.slots as usize, per_stream);

        let mut got: Vec<Vec<Vec<Detection>>> = vec![vec![Vec::new(); per_stream]; seeds.len()];
        let mut n = 0;
        while let Ok(d) = done_rx.recv() {
            assert!(d.latency >= 0.0);
            got[d.stream as usize][d.scpi as usize] = d.detections;
            n += 1;
        }
        assert_eq!(n, seeds.len() * per_stream);
        for (s, (g, w)) in got.iter().zip(&want).enumerate() {
            for (i, (gd, wd)) in g.iter().zip(w).enumerate() {
                assert_eq!(gd.len(), wd.len(), "stream {s} CPI {i} detection count");
                for (a, b) in gd.iter().zip(wd) {
                    assert_eq!((a.bin, a.beam, a.range), (b.bin, b.beam, b.range));
                    assert!((a.power - b.power).abs() <= 1e-9 * b.power.abs().max(1.0));
                }
            }
        }
        // Demand-driven reserve: the steady state must be miss-free
        // (every class pre-warmed before the first slot).
        assert_eq!(
            summary.pool_cx.misses, 0,
            "reserve() under-provisioned the complex pool: {:?}",
            summary.pool_cx
        );
        assert_eq!(summary.pool_real.misses, 0);
    }

    /// Variable group sizes (ramp-up and tail slots smaller than
    /// max_group) and same-stream multi-CPI slots keep the per-stream
    /// weight schedule intact.
    #[test]
    fn uneven_groups_and_same_stream_slots_match() {
        let params = StapParams::reduced();
        let sc = Scenario::reduced(7);
        let per_stream = 6usize;
        let cubes: Vec<CCube> = sc.stream(per_stream).map(|(_, _, c)| c).collect();
        let want = ParallelStap::for_scenario(params.clone(), NodeAssignment::tiny(), &sc)
            .run(cubes.clone())
            .detections;

        // One stream, CPIs packed into uneven slots: [0], [1,2], [3,4,5].
        let res = ResidentStap::for_scenario(params, NodeAssignment::tiny(), &sc).with_max_group(3);
        res.reserve(1, 4);
        let (jobs_tx, jobs_rx) = mpsc::sync_channel(4);
        let (done_tx, done_rx) = mpsc::channel();
        let pool = res.pools().cx.clone();
        let feeder = std::thread::spawn(move || {
            let mk = |scpi: usize| {
                let c = &cubes[scpi];
                CpiJob {
                    stream: 0,
                    scpi: scpi as u32,
                    cube: pool.take_cube(c.shape(), |i, j, k| c[(i, j, k)]),
                    submitted: Instant::now(),
                }
            };
            jobs_tx.send(vec![mk(0)]).unwrap();
            jobs_tx.send(vec![mk(1), mk(2)]).unwrap();
            jobs_tx.send(vec![mk(3), mk(4), mk(5)]).unwrap();
        });
        let summary = res.serve(jobs_rx, done_tx).unwrap();
        feeder.join().unwrap();
        assert_eq!(summary.cpis as usize, per_stream);
        assert_eq!(summary.slots, 3);

        let mut got = vec![Vec::new(); per_stream];
        while let Ok(d) = done_rx.recv() {
            got[d.scpi as usize] = d.detections;
        }
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.len(), w.len(), "CPI {i}");
            for (a, b) in g.iter().zip(w) {
                assert_eq!((a.bin, a.beam, a.range), (b.bin, b.beam, b.range));
            }
        }
    }
}
