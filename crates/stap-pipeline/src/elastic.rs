//! Elastic runtime rebalancing: resident epochs with live rank shifts.
//!
//! The resident pipeline ([`crate::resident::ResidentStap`]) runs one
//! fixed [`NodeAssignment`] for its whole life. The paper picks that
//! assignment offline (Tables 7-10) from a *predicted* load profile; a
//! deployed radar sees the real one — clutter-heavy dwells that inflate
//! the hard-weight QR, CFAR windows that widen with range extent, or a
//! node dropping out mid-campaign. [`ElasticStap`] closes the loop: it
//! runs the resident world in **epochs**, watches the per-task busy
//! telemetry each epoch reports, and between epochs *shifts ranks
//! toward the measured bottleneck* — re-partitioning the carried
//! [`ResidentState`] so detections stay bit-identical to a run that
//! never rebalanced.
//!
//! Mechanics of one rebalance:
//!
//! 1. a trigger arrives on the control channel ([`Rebalance::Now`] from
//!    a load spike, [`Rebalance::Degraded`] from a rank-loss /
//!    degradation event, [`Rebalance::At`] from a test or schedule);
//! 2. the forwarder stops relaying slot groups and drops the epoch's
//!    inner job channel: the resident world drains in-flight slots
//!    through its normal shutdown cascade and exports its cross-slot
//!    state (weight history rings, QR recursion, weight FIFOs) keyed by
//!    global bin indices;
//! 3. [`plan_rebalance`] ranks tasks by `busy[t] / nodes[t]` and moves
//!    one rank from the least-loaded multi-rank donor to the
//!    bottleneck (capacity- and threshold-checked);
//! 4. a new epoch starts under the shifted assignment, importing the
//!    carried state re-partitioned to the new bin ranges, on the *same*
//!    shared buffer pools (no cold re-warm).
//!
//! The bit-identical guarantee rests on two invariants proven
//! elsewhere: per-bin computations are partition-independent
//! (`runner::equivalence_holds_across_assignments`), and the state
//! export/import round-trip preserves per-bin FIFO order exactly
//! ([`crate::resident`]).

use crate::assignment::{NodeAssignment, TASK_NAMES};
use crate::fault::RuntimePolicy;
use crate::resident::{CpiDone, CpiJob, ResidentStap, ResidentState, ResidentSummary};
use crate::runner::PipelineError;
use crate::tasks::PipelinePools;
use stap_core::params::StapParams;
use stap_math::CMat;
use stap_radar::Scenario;
use std::sync::mpsc::{sync_channel, Receiver, Sender, TryRecvError};

/// A rebalance trigger, sent on the elastic control channel.
#[derive(Clone, Debug)]
pub enum Rebalance {
    /// Rebalance at the next slot boundary (load spike, operator).
    Now {
        /// Human-readable trigger description, kept in the epoch report.
        reason: String,
    },
    /// Rebalance once the global forwarded-slot count reaches this
    /// value. Deterministic; the property tests use it to force a
    /// mid-campaign reassignment at an exact slot.
    At(u64),
    /// A task suffered a rank-loss / degradation event: shift a rank
    /// toward it immediately, bypassing the cooldown and the imbalance
    /// threshold.
    Degraded {
        /// Task index (0..7) that degraded.
        task: usize,
    },
}

/// One epoch of an elastic session: the assignment it ran, the resident
/// summary it produced, and what ended it.
#[derive(Clone, Debug)]
pub struct EpochReport {
    /// Node assignment this epoch ran under.
    pub assign: NodeAssignment,
    /// The epoch's resident summary (busy telemetry, health, pools).
    pub summary: ResidentSummary,
    /// Why the epoch ended: `None` means the job stream drained; a
    /// string names the rebalance trigger.
    pub trigger: Option<String>,
}

/// What an elastic session reports after the job stream drains.
#[derive(Clone, Debug)]
pub struct ElasticSummary {
    /// CPIs fully processed, across all epochs.
    pub cpis: u64,
    /// Slots processed, across all epochs.
    pub slots: u64,
    /// Rank shifts actually applied (a trigger whose plan found no
    /// beneficial or feasible shift drains an epoch but does not count).
    pub rebalances: u64,
    /// Per-epoch reports, in order.
    pub epochs: Vec<EpochReport>,
    /// The assignment the final epoch ran under.
    pub final_assign: NodeAssignment,
}

impl ElasticSummary {
    /// Collapses the per-epoch resident summaries into one, for
    /// consumers (the ingestion server's summary) that report a single
    /// session: counters and busy seconds sum, health merges, pool
    /// stats come from the last epoch (the pools are shared, so the
    /// last epoch's stats already span the whole session).
    pub fn merged_resident(&self) -> ResidentSummary {
        let mut m = ResidentSummary::default();
        for e in &self.epochs {
            m.cpis += e.summary.cpis;
            m.slots += e.summary.slots;
            m.elapsed += e.summary.elapsed;
            m.health.merge(&e.summary.health);
            for t in 0..7 {
                m.busy[t] += e.summary.busy[t];
            }
        }
        if let Some(last) = self.epochs.last() {
            m.pool_cx = last.summary.pool_cx;
            m.pool_real = last.summary.pool_real;
        }
        m
    }
}

/// Per-task partition-space capacities: a task cannot use more nodes
/// than it has units of its partitioned dimension (Doppler partitions
/// range cells, the weight/beamform pairs partition their bin spaces,
/// PC and CFAR partition natural bins).
pub fn task_capacity(params: &StapParams) -> [usize; 7] {
    [
        params.k_range,
        params.n_easy(),
        params.n_hard,
        params.n_easy(),
        params.n_hard,
        params.n_pulses,
        params.n_pulses,
    ]
}

/// Plans one rank shift from live busy telemetry: move one rank from
/// the least-loaded donor (per-node busy, `nodes > 1`) to the
/// bottleneck (`forced` task if given, else the per-node busiest).
///
/// Returns `None` when no shift is justified or feasible:
/// * the bottleneck is already at its partition-space capacity,
/// * every other task runs a single rank (nothing can shrink),
/// * (unforced only) the bottleneck/donor per-node busy ratio does not
///   exceed `imbalance` — shifting on noise would thrash.
pub fn plan_rebalance(
    busy: &[f64; 7],
    assign: NodeAssignment,
    forced: Option<usize>,
    imbalance: f64,
    caps: &[usize; 7],
) -> Option<NodeAssignment> {
    let per_node = |t: usize| busy[t] / assign.0[t].max(1) as f64;
    let hot = match forced {
        Some(t) => t,
        None => (0..7).max_by(|&a, &b| per_node(a).total_cmp(&per_node(b)))?,
    };
    if assign.0[hot] + 1 > caps[hot] {
        return None;
    }
    let donor = (0..7)
        .filter(|&t| t != hot && assign.0[t] > 1)
        .min_by(|&a, &b| per_node(a).total_cmp(&per_node(b)))?;
    if forced.is_none() {
        let d = per_node(donor);
        if d <= 0.0 || d.is_nan() || per_node(hot) / d < imbalance {
            return None;
        }
    }
    let mut next = assign;
    next.0[hot] += 1;
    next.0[donor] -= 1;
    Some(next)
}

/// The elastic resident pipeline: a sequence of [`ResidentStap`] epochs
/// sharing one pool family and carrying [`ResidentState`] across
/// assignment changes.
pub struct ElasticStap {
    /// Algorithm parameters.
    pub params: StapParams,
    /// Initial node assignment (epoch 0).
    pub assign: NodeAssignment,
    /// Steering matrices per transmit-beam position.
    pub steering: Vec<CMat>,
    /// Runtime policy; `rebalance`, `rebalance_cooldown` and
    /// `rebalance_imbalance` govern the elastic behavior.
    pub policy: RuntimePolicy,
    /// Slots each epoch's driver keeps in flight.
    pub window: usize,
    /// Maximum CPIs coalesced into one slot.
    pub max_group: usize,
    /// Stream-count hint for per-epoch pool reservation.
    pub streams_hint: usize,
    /// Queue-depth hint for per-epoch pool reservation.
    pub queue_depth_hint: usize,
    /// Soft mailbox high-water mark installed in every epoch (0 = off).
    pub mailbox_high_water: usize,
    pools: PipelinePools,
}

impl ElasticStap {
    /// Builds an elastic runner from explicit steering matrices.
    pub fn new(params: StapParams, assign: NodeAssignment, steering: Vec<CMat>) -> Self {
        params.validate().expect("invalid parameters");
        assert!(!steering.is_empty(), "need at least one steering matrix");
        ElasticStap {
            params,
            assign,
            steering,
            policy: RuntimePolicy::default(),
            window: 4,
            max_group: 4,
            streams_hint: 1,
            queue_depth_hint: 2,
            mailbox_high_water: 0,
            pools: PipelinePools::default(),
        }
    }

    /// Steering fans matching [`stap_core::SequentialStap::for_scenario`].
    pub fn for_scenario(params: StapParams, assign: NodeAssignment, scenario: &Scenario) -> Self {
        let steering = scenario
            .transmit_beams
            .iter()
            .map(|&c| {
                scenario
                    .geom
                    .beam_fan(c, scenario.beam_half_width_deg / 2.0, params.m_beams)
            })
            .collect();
        ElasticStap::new(params, assign, steering)
    }

    /// Sets the runtime policy (rebalance knobs included).
    pub fn with_policy(mut self, policy: RuntimePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the slot window (in-flight slots per epoch).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Sets the per-slot coalescing bound.
    pub fn with_max_group(mut self, max_group: usize) -> Self {
        self.max_group = max_group.max(1);
        self
    }

    /// Sets the pool-reservation hints (streams, per-stream queue depth).
    pub fn with_reserve_hints(mut self, streams: usize, queue_depth: usize) -> Self {
        self.streams_hint = streams.max(1);
        self.queue_depth_hint = queue_depth;
        self
    }

    /// Installs a soft mailbox high-water mark on every epoch's ranks.
    pub fn with_mailbox_high_water(mut self, high_water: usize) -> Self {
        self.mailbox_high_water = high_water;
        self
    }

    /// Replaces the buffer pools with an existing (shared) set, so an
    /// ingestion layer holding pool handles keeps them valid across
    /// rebalances.
    pub fn with_shared_pools(mut self, pools: PipelinePools) -> Self {
        self.pools = pools;
        self
    }

    /// The shared buffer pools, threaded through every epoch.
    pub fn pools(&self) -> &PipelinePools {
        &self.pools
    }

    /// Runs epochs until the `jobs` channel disconnects and the last
    /// epoch drains. Control messages on `control` trigger rebalances
    /// at slot boundaries; completions stream out on `done` exactly as
    /// in [`ResidentStap::serve`].
    pub fn serve(
        &self,
        jobs: Receiver<Vec<CpiJob>>,
        done: Sender<CpiDone>,
        control: Receiver<Rebalance>,
    ) -> Result<ElasticSummary, PipelineError> {
        let caps = task_capacity(&self.params);
        let mut assign = self.assign;
        let mut carry = ResidentState::default();
        let mut out = ElasticSummary {
            cpis: 0,
            slots: 0,
            rebalances: 0,
            epochs: Vec::new(),
            final_assign: assign,
        };
        // Global forwarded-slot count (for Rebalance::At) and slots
        // since the last applied shift (cooldown).
        let mut global_slot: u64 = 0;
        let mut since_shift: u64 = u64::MAX / 2; // first trigger is never cooldown-blocked
        let mut scheduled_at: Option<u64> = None;
        let mut jobs_open = true;

        while jobs_open {
            let runner = ResidentStap::new(self.params.clone(), assign, self.steering.clone())
                .with_window(self.window)
                .with_max_group(self.max_group)
                .with_mailbox_high_water(self.mailbox_high_water)
                .with_pools(self.pools.clone());
            runner.reserve(self.streams_hint, self.queue_depth_hint);
            let carried = std::mem::take(&mut carry);
            let done_tx = done.clone();
            let (inner_tx, inner_rx) = sync_channel::<Vec<CpiJob>>(self.window.max(1) * 2);
            let runner_ref = &runner;

            let mut trigger: Option<String> = None;
            let mut forced: Option<usize> = None;

            let epoch = std::thread::scope(|s| {
                let engine =
                    s.spawn(move || runner_ref.serve_with_state(inner_rx, done_tx, carried));
                // Forward slot groups until the outer stream drains or a
                // trigger fires at a slot boundary.
                loop {
                    let batch = match jobs.recv() {
                        Ok(b) => b,
                        Err(_) => {
                            jobs_open = false;
                            break;
                        }
                    };
                    if inner_tx.send(batch).is_err() {
                        // Engine exited early (error path); stop forwarding
                        // and surface whatever it returned.
                        break;
                    }
                    global_slot += 1;
                    since_shift += 1;
                    // Drain the control channel; the *last* imperative
                    // trigger wins, schedules persist until they fire.
                    loop {
                        match control.try_recv() {
                            Ok(Rebalance::Now { reason }) => {
                                trigger = Some(reason);
                                forced = None;
                            }
                            Ok(Rebalance::At(slot)) => scheduled_at = Some(slot),
                            Ok(Rebalance::Degraded { task }) => {
                                trigger = Some(format!(
                                    "degraded:{}",
                                    TASK_NAMES.get(task).copied().unwrap_or("?")
                                ));
                                forced = Some(task.min(6));
                            }
                            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                        }
                    }
                    if trigger.is_none() && scheduled_at.is_some_and(|at| global_slot >= at) {
                        trigger = Some(format!("scheduled@{global_slot}"));
                        scheduled_at = None;
                    }
                    if let Some(t) = &trigger {
                        let urgent = forced.is_some();
                        if self.policy.rebalance
                            && (urgent || since_shift >= self.policy.rebalance_cooldown as u64)
                        {
                            let _ = t;
                            break;
                        }
                        // Policy off or still cooling down: discard.
                        trigger = None;
                        forced = None;
                    }
                }
                drop(inner_tx);
                engine.join().expect("elastic engine panicked")
            });
            let (esum, estate) = epoch?;
            carry = estate;
            out.cpis += esum.cpis;
            out.slots += esum.slots;
            out.epochs.push(EpochReport {
                assign,
                summary: esum.clone(),
                trigger: trigger.clone(),
            });
            if trigger.is_some() && jobs_open {
                if let Some(next) = plan_rebalance(
                    &esum.busy,
                    assign,
                    forced,
                    self.policy.rebalance_imbalance,
                    &caps,
                ) {
                    assign = next;
                    out.rebalances += 1;
                    since_shift = 0;
                }
                // No feasible/beneficial shift: continue under the same
                // assignment (the epoch boundary itself is harmless).
            }
        }
        out.final_assign = assign;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::EASY_WT;
    use stap_core::Detection;
    use stap_cube::CCube;
    use stap_radar::Scenario;
    use std::sync::mpsc;
    use std::time::Instant;

    fn caps7() -> [usize; 7] {
        [64; 7]
    }

    /// The acceptance property: a forced mid-campaign reassignment
    /// (rank-loss degradation on the easy-weight task) produces
    /// *bit-identical* detections to a run that never rebalanced — the
    /// weight-history rings, QR recursion state and beamform FIFOs all
    /// migrate exactly across the epoch boundary.
    #[test]
    fn rebalance_mid_campaign_is_bit_identical() {
        let params = StapParams::reduced();
        let sc = Scenario::reduced(13);
        let per_stream = 12usize;
        let cubes: Vec<CCube> = sc.stream(per_stream).map(|(_, _, c)| c).collect();

        let run_straight = |cubes: &[CCube]| -> Vec<Vec<Detection>> {
            let res = ResidentStap::for_scenario(params.clone(), NodeAssignment::tiny(), &sc)
                .with_max_group(1);
            res.reserve(1, 2);
            let (jobs_tx, jobs_rx) = mpsc::sync_channel(2);
            let (done_tx, done_rx) = mpsc::channel();
            let pool = res.pools().cx.clone();
            let n = cubes.len();
            let feed = cubes.to_vec();
            let feeder = std::thread::spawn(move || {
                for (scpi, c) in feed.iter().enumerate() {
                    jobs_tx
                        .send(vec![CpiJob {
                            stream: 0,
                            scpi: scpi as u32,
                            cube: pool.take_cube(c.shape(), |i, j, k| c[(i, j, k)]),
                            submitted: Instant::now(),
                        }])
                        .unwrap();
                }
            });
            res.serve(jobs_rx, done_tx).unwrap();
            feeder.join().unwrap();
            let mut got = vec![Vec::new(); n];
            while let Ok(d) = done_rx.recv() {
                got[d.scpi as usize] = d.detections;
            }
            got
        };
        let want = run_straight(&cubes);

        // Elastic run: same slot structure, but a Degraded{EASY_WT}
        // event lands mid-campaign (after slot 6 is submitted), forcing
        // a rank shift toward easy weight at the next slot boundary.
        let el = ElasticStap::for_scenario(params.clone(), NodeAssignment::tiny(), &sc)
            .with_max_group(1)
            .with_reserve_hints(1, 2)
            .with_policy(RuntimePolicy {
                rebalance: true,
                rebalance_cooldown: 1,
                ..RuntimePolicy::default()
            });
        let (jobs_tx, jobs_rx) = mpsc::sync_channel(2);
        let (done_tx, done_rx) = mpsc::channel();
        let (ctl_tx, ctl_rx) = mpsc::channel();
        let pool = el.pools().cx.clone();
        let cubes2 = cubes.clone();
        let feeder = std::thread::spawn(move || {
            for (scpi, c) in cubes2.iter().enumerate() {
                if scpi == 6 {
                    ctl_tx.send(Rebalance::Degraded { task: EASY_WT }).unwrap();
                }
                jobs_tx
                    .send(vec![CpiJob {
                        stream: 0,
                        scpi: scpi as u32,
                        cube: pool.take_cube(c.shape(), |i, j, k| c[(i, j, k)]),
                        submitted: Instant::now(),
                    }])
                    .unwrap();
                // Keep the trigger mid-campaign: the bounded channel
                // already throttles the feeder to the engine's pace.
            }
        });
        let summary = el.serve(jobs_rx, done_tx, ctl_rx).unwrap();
        feeder.join().unwrap();

        assert_eq!(summary.cpis as usize, per_stream);
        assert_eq!(
            summary.rebalances, 1,
            "the degradation must force one shift"
        );
        assert_eq!(summary.epochs.len(), 2);
        assert_eq!(
            summary.final_assign.0[EASY_WT],
            NodeAssignment::tiny().0[EASY_WT] + 1,
            "the degraded task gained a rank: {:?}",
            summary.final_assign
        );
        assert_eq!(summary.final_assign.total(), NodeAssignment::tiny().total());
        assert!(summary.epochs[0].summary.slots >= 1);
        assert!(summary.epochs[1].summary.slots >= 1);

        let mut got = vec![Vec::new(); per_stream];
        while let Ok(d) = done_rx.recv() {
            got[d.scpi as usize] = d.detections;
        }
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.len(), w.len(), "CPI {i} detection count");
            for (a, b) in g.iter().zip(w) {
                assert_eq!((a.bin, a.beam, a.range), (b.bin, b.beam, b.range));
                assert_eq!(
                    a.power.to_bits(),
                    b.power.to_bits(),
                    "CPI {i} bin {} power must be bit-identical across the rebalance",
                    a.bin
                );
            }
        }
    }

    /// With no triggers an elastic session is one epoch and applies no
    /// shifts — pure pass-through over the resident engine.
    #[test]
    fn quiet_session_is_single_epoch() {
        let params = StapParams::reduced();
        let sc = Scenario::reduced(5);
        let cubes: Vec<CCube> = sc.stream(3).map(|(_, _, c)| c).collect();
        let el = ElasticStap::for_scenario(params, NodeAssignment::tiny(), &sc)
            .with_max_group(1)
            .with_policy(RuntimePolicy {
                rebalance: true,
                rebalance_cooldown: 1,
                ..RuntimePolicy::default()
            });
        let (jobs_tx, jobs_rx) = mpsc::sync_channel(2);
        let (done_tx, done_rx) = mpsc::channel();
        let (_ctl_tx, ctl_rx) = mpsc::channel::<Rebalance>();
        let pool = el.pools().cx.clone();
        let feeder = std::thread::spawn(move || {
            for (scpi, c) in cubes.iter().enumerate() {
                jobs_tx
                    .send(vec![CpiJob {
                        stream: 0,
                        scpi: scpi as u32,
                        cube: pool.take_cube(c.shape(), |i, j, k| c[(i, j, k)]),
                        submitted: Instant::now(),
                    }])
                    .unwrap();
            }
        });
        let summary = el.serve(jobs_rx, done_tx, ctl_rx).unwrap();
        feeder.join().unwrap();
        drop(done_rx);
        assert_eq!(summary.cpis, 3);
        assert_eq!(summary.rebalances, 0);
        assert_eq!(summary.epochs.len(), 1);
        assert_eq!(summary.final_assign, NodeAssignment::tiny());
        let m = summary.merged_resident();
        assert_eq!(m.cpis, 3);
        assert!(m.busy.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn plan_moves_rank_toward_per_node_bottleneck() {
        // Task 2 is busiest per node; task 0 is the idlest donor.
        let assign = NodeAssignment([4, 2, 2, 2, 2, 2, 2]);
        let busy = [0.4, 0.6, 2.0, 0.6, 0.6, 0.6, 0.6]; // per-node: 0.1 .. 1.0
        let next = plan_rebalance(&busy, assign, None, 1.25, &caps7()).expect("shift expected");
        assert_eq!(next.0, [3, 2, 3, 2, 2, 2, 2]);
        assert_eq!(next.total(), assign.total());
    }

    #[test]
    fn plan_refuses_when_every_donor_is_single_rank() {
        let assign = NodeAssignment([1, 1, 1, 1, 1, 1, 1]);
        let busy = [0.1, 0.1, 5.0, 0.1, 0.1, 0.1, 0.1];
        assert!(plan_rebalance(&busy, assign, None, 1.25, &caps7()).is_none());
        // Even a forced (rank-loss) trigger cannot shrink a single-rank
        // task to zero.
        assert!(plan_rebalance(&busy, assign, Some(2), 1.25, &caps7()).is_none());
    }

    #[test]
    fn plan_respects_imbalance_threshold_unless_forced() {
        let assign = NodeAssignment([2, 2, 2, 2, 2, 2, 2]);
        let busy = [1.0, 1.0, 1.2, 1.0, 1.0, 1.0, 1.0]; // ratio 1.2 < 1.25
        assert!(plan_rebalance(&busy, assign, None, 1.25, &caps7()).is_none());
        // A degradation event bypasses the threshold (and may target a
        // task that is not the busiest).
        let next = plan_rebalance(&busy, assign, Some(5), 1.25, &caps7()).expect("forced shift");
        assert_eq!(next.0[5], 3);
        assert_eq!(next.total(), assign.total());
    }

    #[test]
    fn plan_honors_partition_space_capacity() {
        let mut caps = caps7();
        caps[2] = 2; // bottleneck already saturates its bin space
        let assign = NodeAssignment([2, 2, 2, 2, 2, 2, 2]);
        let busy = [0.1, 0.1, 9.0, 0.1, 0.1, 0.1, 0.1];
        assert!(plan_rebalance(&busy, assign, None, 1.25, &caps).is_none());
    }

    #[test]
    fn plan_with_zero_telemetry_only_moves_when_forced() {
        let assign = NodeAssignment([2, 2, 2, 2, 2, 2, 2]);
        let busy = [0.0; 7];
        assert!(plan_rebalance(&busy, assign, None, 1.25, &caps7()).is_none());
        assert!(plan_rebalance(&busy, assign, Some(3), 1.25, &caps7()).is_some());
    }

    #[test]
    fn capacity_matches_partition_spaces() {
        let p = StapParams::reduced();
        let caps = task_capacity(&p);
        assert_eq!(caps[0], p.k_range);
        assert_eq!(caps[1], p.n_easy());
        assert_eq!(caps[2], p.n_hard);
        assert_eq!(caps[5], p.n_pulses);
    }
}
