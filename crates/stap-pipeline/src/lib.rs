//! The parallel pipelined STAP system (the paper's core contribution).
//!
//! Seven tasks — Doppler filtering, easy/hard weight computation,
//! easy/hard beamforming, pulse compression, CFAR — each data-parallel
//! over its own set of nodes, connected by all-to-all personalized
//! redistribution, with the temporal weight dependency off the latency
//! path (Figure 4 of the paper). This crate executes that structure for
//! real on the `stap-mp` thread-backed runtime:
//!
//! * [`assignment`] — node counts per task (the paper's case 1/2/3) and
//!   the partitioning of each task's data dimension,
//! * [`msg`] — the wire messages and tag scheme,
//! * [`tasks`] — the per-node SPMD loops for all seven tasks,
//! * [`runner`] — world construction, CPI injection, detection
//!   collection, timing aggregation,
//! * [`metrics`] — per-task recv/comp/send timing and the paper's
//!   throughput/latency equations (1)-(3).
//!
//! The task graph (paper Figure 4; `SD` spatial, `TD` temporal
//! dependencies, `P_i` nodes per task):
//!
//! ```text
//!                       +--------------+   TD(1,3): weights for CPI i
//!                  +--> | easy weight  | ----------------+
//!   CPI i         |    | P1 (bins)    |                  v
//! +-----------+   |    +--------------+          +--------------+
//! | Doppler   | --+  gathered training cells --> | easy beamform| --+
//! | filter    |   |                              | P3 (bins)    |   |
//! | P0 (range)| --+--> full range, reorganized ->+--------------+   |
//! +-----------+   |                                                 v
//!       |         |    +--------------+          +--------------+ +-----------+ +------+
//!       |         +--> | hard weight  |  TD(2,4) | hard beamform| | pulse     | | CFAR |
//!       |              | P2 (bins,6   | -------> | P4 (bins,    | | compress  | | P6   |
//!       |              | range segs)  |          | segments)    | | P5 (bins) | |(bins)|
//!       |              +--------------+          +--------------+ +-----------+ +------+
//!       |                                                |             ^    |      ^
//!       +--- full range, both stagger windows -----------+             |    +------+
//!                                                        +-------------+  same-bin blocks
//! ```
//!
//! Tasks 1 and 2 consume CPI `i`'s Doppler output but their weights
//! apply to the *next* CPI of the same azimuth — the temporal dependency
//! that keeps ~52% of the total computation (Table 1) off the latency
//! path.
//!
//! The defining integration property: for identical inputs the parallel
//! pipeline produces *bitwise identical* detections to
//! `stap_core::SequentialStap` — every kernel runs on identically
//! assembled matrices in the same order.

pub mod assignment;
pub mod elastic;
pub mod fault;
pub mod metrics;
pub mod msg;
pub mod report;
pub mod resident;
pub mod runner;
pub mod tasks;
pub mod trace;
pub mod wire;

pub use assignment::NodeAssignment;
pub use elastic::{plan_rebalance, task_capacity, ElasticStap, ElasticSummary, Rebalance};
pub use fault::RuntimePolicy;
pub use metrics::{
    latency_eq2, real_latency_eq3, throughput_eq1, CpiOutcome, EdgeHealth, PipelineHealth,
    PipelineTimings, TaskTiming,
};
pub use report::{render_health, render_timings};
pub use resident::{CpiDone, CpiJob, ResidentStap, ResidentState, ResidentSummary};
pub use runner::{ParallelStap, PipelineError, PipelineOutput};
pub use trace::{
    chrome_trace_json, render_breakdown, CpiMark, EdgeStat, PipelineTrace, TaskInterval, TaskSpan,
    TraceStats,
};
