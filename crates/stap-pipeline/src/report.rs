//! Rendering pipeline timings as the paper's Table-7-style report.

use crate::assignment::{NodeAssignment, TASK_NAMES};
use crate::metrics::{latency_eq2, real_latency_eq3, throughput_eq1, PipelineTimings};
use std::fmt::Write as _;

/// Renders per-task recv/comp/send/total plus the throughput/latency
/// summary, in the layout of the paper's Table 7.
pub fn render_timings(timings: &PipelineTimings, assign: &NodeAssignment) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<16} {:>5} {:>9} {:>9} {:>9} {:>9}",
        "task", "nodes", "recv", "comp", "send", "total"
    )
    .unwrap();
    for t in 0..7 {
        let tt = timings.tasks[t];
        writeln!(
            out,
            "{:<16} {:>5} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
            TASK_NAMES[t],
            assign.0[t],
            tt.recv,
            tt.comp,
            tt.send,
            tt.total()
        )
        .unwrap();
    }
    writeln!(
        out,
        "throughput {:.4} CPI/s (eq1 {:.4})",
        timings.measured_throughput,
        throughput_eq1(&timings.tasks)
    )
    .unwrap();
    writeln!(
        out,
        "latency    {:.4} s     (eq2 {:.4}, eq3 {:.4})",
        timings.measured_latency,
        latency_eq2(&timings.tasks),
        real_latency_eq3(&timings.tasks)
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::TaskTiming;

    #[test]
    fn report_contains_every_task_and_summary() {
        let mut t = PipelineTimings::default();
        for (i, task) in t.tasks.iter_mut().enumerate() {
            *task = TaskTiming {
                recv: 0.01 * i as f64,
                comp: 0.1,
                send: 0.001,
                recv_idle: 0.005,
            };
        }
        t.measured_throughput = 3.5;
        t.measured_latency = 0.7;
        let s = render_timings(&t, &NodeAssignment::case2());
        for name in TASK_NAMES {
            assert!(s.contains(name), "missing {name}");
        }
        assert!(s.contains("throughput 3.5000"));
        assert!(s.contains("eq2"));
        assert!(s.contains("eq3"));
    }

    #[test]
    fn report_reflects_node_counts() {
        let t = PipelineTimings::default();
        let s = render_timings(&t, &NodeAssignment::case1());
        assert!(s.contains("112"), "hard weight node count missing:\n{s}");
    }
}
