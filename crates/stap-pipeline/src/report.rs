//! Rendering pipeline timings as the paper's Table-7-style report.

use crate::assignment::{NodeAssignment, TASK_NAMES};
use crate::metrics::{latency_eq2, real_latency_eq3, throughput_eq1, PipelineTimings};
use std::fmt::Write as _;

/// Renders per-task recv/comp/send/total plus the throughput/latency
/// summary, in the layout of the paper's Table 7.
pub fn render_timings(timings: &PipelineTimings, assign: &NodeAssignment) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<16} {:>5} {:>9} {:>9} {:>9} {:>9}",
        "task", "nodes", "recv", "comp", "send", "total"
    )
    .unwrap();
    for (t, name) in TASK_NAMES.iter().enumerate() {
        let tt = timings.tasks[t];
        writeln!(
            out,
            "{:<16} {:>5} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
            name,
            assign.0[t],
            tt.recv,
            tt.comp,
            tt.send,
            tt.total()
        )
        .unwrap();
    }
    writeln!(
        out,
        "throughput {:.4} CPI/s (eq1 {:.4})",
        timings.measured_throughput,
        throughput_eq1(&timings.tasks)
    )
    .unwrap();
    writeln!(
        out,
        "latency    {:.4} s     (eq2 {:.4}, eq3 {:.4})",
        timings.measured_latency,
        latency_eq2(&timings.tasks),
        real_latency_eq3(&timings.tasks)
    )
    .unwrap();
    if timings.health.any() || !timings.outcomes.is_empty() {
        out.push_str(&render_health(timings));
    }
    out
}

/// Renders the fault-tolerance section: per-CPI outcome tallies and the
/// non-zero per-edge health counters. Empty-ish runs produce a single
/// "healthy" line so a fault campaign's log always states its verdict.
pub fn render_health(timings: &PipelineTimings) -> String {
    use crate::metrics::CpiOutcome;
    let mut out = String::new();
    let h = &timings.health;
    let total = timings.outcomes.len();
    let ok = timings
        .outcomes
        .iter()
        .filter(|o| **o == CpiOutcome::Ok)
        .count();
    writeln!(
        out,
        "health     {total} CPIs: {ok} ok, {} degraded (stale weights), {} dropped",
        h.degraded_cpis, h.dropped_cpis
    )
    .unwrap();
    let (mut retries, mut dropped, mut stale, mut quar, mut late) = (0u64, 0u64, 0u64, 0u64, 0u64);
    for e in &h.edges {
        retries += e.retries;
        dropped += e.dropped;
        stale += e.stale_weights;
        quar += e.quarantined;
        late += e.late_or_dup;
    }
    if retries + dropped + stale + quar + late > 0 {
        writeln!(
            out,
            "edges      {retries} retries, {dropped} drops, {stale} stale-weight fallbacks, \
             {quar} quarantined, {late} late/dup discarded"
        )
        .unwrap();
    } else if total > 0 && ok == total {
        writeln!(out, "edges      healthy (no retries, drops or fallbacks)").unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::TaskTiming;

    #[test]
    fn report_contains_every_task_and_summary() {
        let mut t = PipelineTimings::default();
        for (i, task) in t.tasks.iter_mut().enumerate() {
            *task = TaskTiming {
                recv: 0.01 * i as f64,
                comp: 0.1,
                send: 0.001,
                recv_idle: 0.005,
            };
        }
        t.measured_throughput = 3.5;
        t.measured_latency = 0.7;
        let s = render_timings(&t, &NodeAssignment::case2());
        for name in TASK_NAMES {
            assert!(s.contains(name), "missing {name}");
        }
        assert!(s.contains("throughput 3.5000"));
        assert!(s.contains("eq2"));
        assert!(s.contains("eq3"));
        // Healthy, non-FT run: no health section.
        assert!(!s.contains("health"));
    }

    #[test]
    fn report_renders_health_section_when_faulty() {
        use crate::metrics::CpiOutcome;
        let mut t = PipelineTimings::default();
        t.outcomes = vec![
            CpiOutcome::Ok,
            CpiOutcome::DegradedStaleWeights,
            CpiOutcome::Dropped,
        ];
        t.health.degraded_cpis = 1;
        t.health.dropped_cpis = 1;
        t.health.edges[crate::msg::Edge::EasyWtToEasyBf as usize].stale_weights = 1;
        t.health.edges[crate::msg::Edge::Input as usize].dropped = 1;
        let s = render_timings(&t, &NodeAssignment::case2());
        assert!(s.contains("3 CPIs: 1 ok, 1 degraded"), "{s}");
        assert!(s.contains("1 drops"), "{s}");
        assert!(s.contains("1 stale-weight fallbacks"), "{s}");
    }

    #[test]
    fn all_ok_ft_run_reports_healthy() {
        use crate::metrics::CpiOutcome;
        let mut t = PipelineTimings::default();
        t.outcomes = vec![CpiOutcome::Ok; 4];
        let s = render_health(&t);
        assert!(s.contains("4 CPIs: 4 ok"), "{s}");
        assert!(s.contains("healthy"), "{s}");
    }

    #[test]
    fn report_reflects_node_counts() {
        let t = PipelineTimings::default();
        let s = render_timings(&t, &NodeAssignment::case1());
        assert!(s.contains("112"), "hard weight node count missing:\n{s}");
    }
}
