//! Runtime degradation policy and fault-plane glue for the pipeline.
//!
//! The paper's pipeline sustains one CPI every `1/throughput` seconds
//! (equation (1)); a real-time radar cannot stop when a node stalls or
//! a message is lost. [`RuntimePolicy`] makes every inter-task receive
//! deadline-aware and defines what happens on overrun:
//!
//! * **data edges** — bounded retry, then the CPI is *dropped
//!   end-to-end*: the receiver forwards an explicit
//!   [`crate::msg::Payload::Dropped`] marker downstream so the pipeline
//!   keeps draining instead of stalling on a hole;
//! * **weight edges** — the beamform tasks fall back to the *last good
//!   weights for that azimuth*. This degraded mode is algorithmically
//!   faithful: the paper's temporal dependency (TD(1,3)/TD(2,4),
//!   Fig. 4) already applies weights computed from CPI `i` to CPI
//!   `i + beams`, so reusing the previous revisit's weights merely
//!   widens that gap by one revisit;
//! * **payload screening** — task boundaries reject non-finite payloads
//!   (NaN/Inf from corruption or a diverged solve) with a quarantine
//!   counter instead of silently propagating poison into the recursive
//!   QR state.

use std::time::Duration;

/// Per-run fault-tolerance policy. `Default` is the production
/// configuration with fault tolerance *off*: every receive is the plain
/// blocking receive and results are bit-identical to the non-FT
/// pipeline.
#[derive(Clone, Copy, Debug)]
pub struct RuntimePolicy {
    /// Master switch: when false, task loops take the zero-overhead
    /// blocking path (no timeouts, no screening, no purging).
    pub fault_tolerant: bool,
    /// Deadline for one receive on a data edge.
    pub edge_timeout: Duration,
    /// Deadline for the weight-matrix receive in the beamform tasks;
    /// on overrun the task falls back to stale weights rather than
    /// stalling the latency path.
    pub weight_grace: Duration,
    /// Retries (each of `edge_timeout`) before a data edge is declared
    /// lost and the CPI is dropped.
    pub max_retries: u32,
    /// Screen received payloads for NaN/Inf and quarantine offenders.
    pub screen_nonfinite: bool,
    /// Allow the elastic runner to shift ranks between tasks at slot
    /// boundaries when live telemetry shows a sustained bottleneck.
    pub rebalance: bool,
    /// Minimum slots between two rebalances; also the telemetry window a
    /// bottleneck must persist for before a shift is considered.
    pub rebalance_cooldown: usize,
    /// Per-node busy-time ratio (bottleneck vs donor) that must be
    /// exceeded before a rank is moved; 1.0 would thrash on noise.
    pub rebalance_imbalance: f64,
}

impl Default for RuntimePolicy {
    fn default() -> Self {
        RuntimePolicy {
            fault_tolerant: false,
            edge_timeout: Duration::from_secs(1),
            weight_grace: Duration::from_millis(300),
            max_retries: 1,
            screen_nonfinite: true,
            rebalance: false,
            rebalance_cooldown: 8,
            rebalance_imbalance: 1.25,
        }
    }
}

impl RuntimePolicy {
    /// The fault-tolerant configuration with default deadlines.
    pub fn fault_tolerant() -> Self {
        RuntimePolicy {
            fault_tolerant: true,
            ..RuntimePolicy::default()
        }
    }

    /// Derives deadlines from a modeled CPI interval (seconds per CPI,
    /// i.e. `1 / throughput` from equation (1) or the machine model in
    /// `stap-machine`/`stap-sim`): a data edge may slip by four CPI
    /// intervals before the CPI is abandoned, while weights get one
    /// interval of grace — they are off the latency path, so waiting
    /// longer than a pipeline beat only delays the *next* stage's
    /// deadline budget.
    pub fn from_cpi_interval(seconds_per_cpi: f64) -> Self {
        let clamp = |s: f64, lo: f64, hi: f64| Duration::from_secs_f64(s.clamp(lo, hi));
        RuntimePolicy {
            fault_tolerant: true,
            edge_timeout: clamp(4.0 * seconds_per_cpi, 0.2, 5.0),
            weight_grace: clamp(seconds_per_cpi, 0.05, 2.0),
            max_retries: 1,
            screen_nonfinite: true,
            rebalance: true,
            // Cooldown long enough that ~2 s of telemetry (or at least
            // 4 slots) back a shift; bounded so a very slow machine can
            // still adapt within a campaign.
            rebalance_cooldown: ((2.0 / seconds_per_cpi).ceil() as usize).clamp(4, 64),
            rebalance_imbalance: 1.25,
        }
    }
}

/// Payload corruptor installed via `World::with_corruptor` when a fault
/// plan is active: flips one element of the payload to NaN (cubes,
/// weights) or poisons a detection's power, using the fault plane's
/// deterministic per-message corruption word to pick the element. This
/// models payload bit-corruption at exactly the granularity the
/// receive-side screening detects.
pub fn nan_corruptor() -> stap_mp::Corruptor<crate::msg::Msg> {
    use crate::msg::Payload;
    std::sync::Arc::new(|m: &mut crate::msg::Msg, word: u64| match &mut m.payload {
        Payload::Cube(c) => {
            let s = c.as_mut_slice();
            if !s.is_empty() {
                let i = (word as usize) % s.len();
                s[i] = stap_math::Cx::new(f64::NAN, s[i].im);
            }
        }
        Payload::Real(c) => {
            let s = c.as_mut_slice();
            if !s.is_empty() {
                s[(word as usize) % s.len()] = f64::NAN;
            }
        }
        Payload::Weights(ws) => {
            let n = ws.len().max(1);
            if let Some(w) = ws.get_mut((word as usize) % n) {
                let s = w.as_mut_slice();
                if !s.is_empty() {
                    let i = (word as usize >> 8) % s.len();
                    s[i] = stap_math::Cx::new(s[i].re, f64::NAN);
                }
            }
        }
        Payload::Detections(ds) => {
            if let Some(d) = ds.first_mut() {
                d.power = f64::NAN;
            }
        }
        Payload::DetectionsGroup(gs, _) => {
            if let Some(d) = gs.iter_mut().flatten().next() {
                d.power = f64::NAN;
            }
        }
        Payload::Dropped | Payload::Shutdown => {}
    })
}

/// True when every numeric element of the payload is finite. `Dropped`
/// markers are vacuously clean (they carry no data).
pub fn payload_is_finite(p: &crate::msg::Payload) -> bool {
    use crate::msg::Payload;
    match p {
        Payload::Cube(c) => c.is_finite(),
        Payload::Real(c) => c.is_finite(),
        Payload::Weights(ws) => ws.iter().all(|w| w.is_finite()),
        Payload::Detections(ds) => ds.iter().all(|d| d.power.is_finite()),
        Payload::DetectionsGroup(gs, _) => gs.iter().flatten().all(|d| d.power.is_finite()),
        Payload::Dropped | Payload::Shutdown => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{Msg, Payload};
    use stap_cube::CCube;

    #[test]
    fn default_policy_is_production_off() {
        assert!(!RuntimePolicy::default().fault_tolerant);
        assert!(RuntimePolicy::fault_tolerant().fault_tolerant);
    }

    #[test]
    fn derived_deadlines_clamp_and_scale() {
        let p = RuntimePolicy::from_cpi_interval(0.25);
        assert!(p.fault_tolerant);
        assert_eq!(p.edge_timeout, Duration::from_secs_f64(1.0));
        assert_eq!(p.weight_grace, Duration::from_secs_f64(0.25));
        // Tiny intervals clamp up, huge ones clamp down.
        assert_eq!(
            RuntimePolicy::from_cpi_interval(1e-6).edge_timeout,
            Duration::from_secs_f64(0.2)
        );
        assert_eq!(
            RuntimePolicy::from_cpi_interval(100.0).edge_timeout,
            Duration::from_secs_f64(5.0)
        );
    }

    #[test]
    fn corruptor_introduces_exactly_detectable_nan() {
        let cube = CCube::from_fn([2, 3, 4], |i, j, k| {
            stap_math::Cx::new((i + j + k) as f64, 1.0)
        });
        let mut m = Msg::new(0, Payload::Cube(cube));
        assert!(payload_is_finite(&m.payload));
        (nan_corruptor())(&mut m, 0x1234_5678_9abc_def0);
        assert!(!payload_is_finite(&m.payload));
        assert!(payload_is_finite(&Msg::dropped(1).payload));
    }
}
