//! World construction, CPI injection and result collection.

use crate::assignment::{
    NodeAssignment, Partitions, CFAR, DOPPLER, EASY_BF, EASY_WT, HARD_BF, HARD_WT, PC,
};
use crate::metrics::{PipelineTimings, TaskTiming};
use crate::msg::{tag, Edge, Msg};
use crate::tasks::{
    run_cfar, run_doppler, run_easy_bf, run_easy_weight, run_hard_bf, run_hard_weight, run_pc,
    PipelinePools, TaskCtx,
};
use stap_core::{Detection, StapParams};
use stap_cube::CCube;
use stap_math::CMat;
use stap_mp::World;
use stap_radar::Scenario;
use std::time::Instant;

/// What a pipeline run returns.
pub struct PipelineOutput {
    /// Detections per CPI, merged across CFAR nodes and sorted
    /// (bin, beam, range).
    pub detections: Vec<Vec<Detection>>,
    /// Per-task timings averaged over the measured CPIs plus measured
    /// pipeline rates. On a host with fewer cores than ranks these are
    /// functional timings, not Paragon performance — `stap-sim` models
    /// the latter.
    pub timings: PipelineTimings,
}

/// The parallel pipelined STAP system.
pub struct ParallelStap {
    /// Algorithm parameters.
    pub params: StapParams,
    /// Node assignment.
    pub assign: NodeAssignment,
    /// Steering matrices per transmit-beam position.
    pub steering: Vec<CMat>,
    /// CPIs kept in flight by the driver (pipeline window).
    pub window: usize,
    /// Leading CPIs excluded from timing averages (paper: first 3).
    pub warmup: usize,
    /// Trailing CPIs excluded from timing averages (paper: last 2).
    pub cooldown: usize,
}

impl ParallelStap {
    /// Builds a runner from explicit steering matrices.
    pub fn new(params: StapParams, assign: NodeAssignment, steering: Vec<CMat>) -> Self {
        params.validate().expect("invalid parameters");
        assert!(!steering.is_empty(), "need at least one steering matrix");
        ParallelStap {
            params,
            assign,
            steering,
            window: 4,
            warmup: 3,
            cooldown: 2,
        }
    }

    /// Builds a runner whose steering fans match
    /// [`stap_core::SequentialStap::for_scenario`].
    pub fn for_scenario(params: StapParams, assign: NodeAssignment, scenario: &Scenario) -> Self {
        let steering = scenario
            .transmit_beams
            .iter()
            .map(|&c| {
                scenario
                    .geom
                    .beam_fan(c, scenario.beam_half_width_deg / 2.0, params.m_beams)
            })
            .collect();
        ParallelStap::new(params, assign, steering)
    }

    /// Runs the pipeline over `cpis` (index, cube) pairs, one OS thread
    /// per node plus a driver thread.
    pub fn run(&self, cpis: Vec<CCube>) -> PipelineOutput {
        let num_cpis = cpis.len();
        assert!(num_cpis > 0, "need at least one CPI");
        let parts = Partitions::new(&self.params, &self.assign);
        let world: World<Msg> = World::new(self.assign.world_size());
        let assign = self.assign;
        let params = &self.params;
        let steering = &self.steering;
        let parts_ref = &parts;
        let window = self.window.max(1);
        let cpis_ref = &cpis;
        // One recycling pool per run, shared by every node thread:
        // receivers retire message buffers, senders draw packing buffers.
        let pools = PipelinePools::default();
        let pools_ref = &pools;

        enum NodeResult {
            Task(usize, Vec<TaskTiming>),
            Driver(Vec<Vec<Detection>>, Vec<f64>, Vec<f64>),
        }

        let results = world.run_collect(|mut comm| {
            let rank = comm.rank();
            let ctx = TaskCtx {
                params,
                assign: &assign,
                parts: parts_ref,
                steering,
                num_cpis,
                pools: pools_ref,
            };
            match assign.task_of_rank(rank) {
                Some((DOPPLER, local)) => {
                    NodeResult::Task(DOPPLER, run_doppler(&ctx, &mut comm, local))
                }
                Some((EASY_WT, local)) => {
                    NodeResult::Task(EASY_WT, run_easy_weight(&ctx, &mut comm, local))
                }
                Some((HARD_WT, local)) => {
                    NodeResult::Task(HARD_WT, run_hard_weight(&ctx, &mut comm, local))
                }
                Some((EASY_BF, local)) => {
                    NodeResult::Task(EASY_BF, run_easy_bf(&ctx, &mut comm, local))
                }
                Some((HARD_BF, local)) => {
                    NodeResult::Task(HARD_BF, run_hard_bf(&ctx, &mut comm, local))
                }
                Some((PC, local)) => NodeResult::Task(PC, run_pc(&ctx, &mut comm, local)),
                Some((CFAR, local)) => NodeResult::Task(CFAR, run_cfar(&ctx, &mut comm, local)),
                Some(_) => unreachable!("unknown task"),
                None => {
                    // Driver: inject CPI slabs (windowed) and collect
                    // detections, recording injection and completion times.
                    let cfar_ranks: Vec<usize> = assign.rank_range(CFAR).collect();
                    let mut detections: Vec<Vec<Detection>> = Vec::with_capacity(num_cpis);
                    let mut inject_t = vec![0.0f64; num_cpis];
                    let mut complete_t = vec![0.0f64; num_cpis];
                    let t0 = Instant::now();
                    let mut next_inject = 0usize;
                    for done in 0..num_cpis {
                        while next_inject < num_cpis && next_inject < done + window {
                            let cube = &cpis_ref[next_inject];
                            inject_t[next_inject] = t0.elapsed().as_secs_f64();
                            for (pn, kr) in parts_ref.doppler_k.iter().enumerate() {
                                // Input slabs come from the shared pool too;
                                // the Doppler nodes retire them after use.
                                let buf = pools_ref
                                    .cx
                                    .get(kr.len() * params.j_channels * params.n_pulses);
                                let slab = cube.extract_into(
                                    kr.clone(),
                                    0..params.j_channels,
                                    0..params.n_pulses,
                                    buf,
                                );
                                comm.send(
                                    assign.rank_range(DOPPLER).start + pn,
                                    tag(Edge::Input, next_inject),
                                    Msg::Cube(slab),
                                );
                            }
                            next_inject += 1;
                        }
                        let mut merged = Vec::new();
                        for &src in &cfar_ranks {
                            match comm.recv(src, tag(Edge::Output, done)).unwrap() {
                                Msg::Detections(d) => merged.extend(d),
                                other => panic!("expected detections, got {other:?}"),
                            }
                        }
                        merged.sort_by_key(|d| (d.bin, d.beam, d.range));
                        complete_t[done] = t0.elapsed().as_secs_f64();
                        detections.push(merged);
                    }
                    NodeResult::Driver(detections, inject_t, complete_t)
                }
            }
        });

        // Aggregate.
        let lo = self.warmup.min(num_cpis.saturating_sub(1));
        let hi = num_cpis.saturating_sub(self.cooldown).max(lo + 1);
        let measured: std::ops::Range<usize> = lo..hi;
        let mut tasks = [TaskTiming::default(); 7];
        let mut counts = [0usize; 7];
        let mut detections = Vec::new();
        let mut timings = PipelineTimings::default();
        for r in results {
            match r {
                NodeResult::Task(t, per_cpi) => {
                    for cpi in measured.clone() {
                        if let Some(tt) = per_cpi.get(cpi) {
                            tasks[t].add(tt);
                            counts[t] += 1;
                        }
                    }
                }
                NodeResult::Driver(d, inject, complete) => {
                    let lat: Vec<f64> = measured.clone().map(|i| complete[i] - inject[i]).collect();
                    timings.measured_latency = mean(&lat);
                    let mut intervals: Vec<f64> = measured
                        .clone()
                        .skip(1)
                        .map(|i| complete[i] - complete[i - 1])
                        .collect();
                    if intervals.is_empty() && num_cpis > 1 {
                        // Too few measured CPIs to exclude warmup; use all.
                        intervals = (1..num_cpis)
                            .map(|i| complete[i] - complete[i - 1])
                            .collect();
                    }
                    let mean_int = mean(&intervals);
                    timings.measured_throughput = if mean_int > 0.0 { 1.0 / mean_int } else { 0.0 };
                    detections = d;
                }
            }
        }
        for t in 0..7 {
            if counts[t] > 0 {
                tasks[t] = tasks[t].scale(1.0 / counts[t] as f64);
            }
        }
        timings.tasks = tasks;
        PipelineOutput {
            detections,
            timings,
        }
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stap_core::SequentialStap;

    /// The central invariant: the parallel pipeline produces the exact
    /// detections of the sequential reference.
    #[test]
    fn parallel_matches_sequential_reference() {
        let params = StapParams::reduced();
        let scenario = Scenario::reduced(77);
        let cpis: Vec<CCube> = scenario.stream(6).map(|(_, _, c)| c).collect();

        let mut seq = SequentialStap::for_scenario(params.clone(), &scenario);
        let want: Vec<Vec<Detection>> = cpis
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let beam = i % scenario.transmit_beams.len();
                let mut d = seq.process_cpi(beam, c).detections;
                d.sort_by_key(|d| (d.bin, d.beam, d.range));
                d
            })
            .collect();

        let par = ParallelStap::for_scenario(params, NodeAssignment::tiny(), &scenario);
        let got = par.run(cpis);
        assert_eq!(got.detections.len(), want.len());
        for (i, (g, w)) in got.detections.iter().zip(&want).enumerate() {
            assert_eq!(
                g.len(),
                w.len(),
                "CPI {i}: {} vs {} detections",
                g.len(),
                w.len()
            );
            for (gd, wd) in g.iter().zip(w) {
                assert_eq!((gd.bin, gd.beam, gd.range), (wd.bin, wd.beam, wd.range));
                assert!((gd.power - wd.power).abs() <= 1e-9 * wd.power.abs().max(1.0));
            }
        }
    }

    #[test]
    fn equivalence_holds_across_assignments() {
        let params = StapParams::reduced();
        let scenario = Scenario::reduced(5);
        let cpis: Vec<CCube> = scenario.stream(4).map(|(_, _, c)| c).collect();

        let baseline = ParallelStap::for_scenario(
            params.clone(),
            NodeAssignment([1, 1, 1, 1, 1, 1, 1]),
            &scenario,
        )
        .run(cpis.clone());

        for assign in [
            NodeAssignment([4, 2, 3, 2, 2, 3, 2]),
            NodeAssignment([2, 1, 4, 1, 2, 1, 3]),
        ] {
            let out =
                ParallelStap::for_scenario(params.clone(), assign, &scenario).run(cpis.clone());
            for (i, (a, b)) in out.detections.iter().zip(&baseline.detections).enumerate() {
                assert_eq!(a.len(), b.len(), "assignment {assign:?} CPI {i}");
                for (x, y) in a.iter().zip(b) {
                    assert_eq!((x.bin, x.beam, x.range), (y.bin, y.beam, y.range));
                }
            }
        }
    }

    #[test]
    fn multi_azimuth_streams_work() {
        let params = StapParams::reduced();
        let mut scenario = Scenario::reduced(9);
        scenario.transmit_beams = vec![-20.0, 0.0, 20.0];
        let cpis: Vec<CCube> = scenario.stream(7).map(|(_, _, c)| c).collect();

        let mut seq = SequentialStap::for_scenario(params.clone(), &scenario);
        let want: Vec<usize> = cpis
            .iter()
            .enumerate()
            .map(|(i, c)| seq.process_cpi(i % 3, c).detections.len())
            .collect();

        let par = ParallelStap::for_scenario(params, NodeAssignment::tiny(), &scenario);
        let got = par.run(cpis);
        let got_counts: Vec<usize> = got.detections.iter().map(|d| d.len()).collect();
        assert_eq!(got_counts, want);
    }

    #[test]
    fn timings_are_populated() {
        let params = StapParams::reduced();
        let scenario = Scenario::reduced(3);
        let cpis: Vec<CCube> = scenario.stream(6).map(|(_, _, c)| c).collect();
        let par = ParallelStap::for_scenario(params, NodeAssignment::tiny(), &scenario);
        let out = par.run(cpis);
        for t in 0..7 {
            assert!(
                out.timings.tasks[t].comp > 0.0,
                "task {t} compute time missing"
            );
        }
        assert!(out.timings.measured_throughput > 0.0);
        assert!(out.timings.measured_latency > 0.0);
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;

    /// A panicking kernel anywhere in the pipeline must surface as a
    /// panic from `run`, not a silent hang: the liveness counter in
    /// stap-mp turns the dead rank into `Disconnected` errors on its
    /// peers, whose unwraps then fail fast.
    #[test]
    #[should_panic]
    fn rank_panic_propagates_not_hangs() {
        let params = StapParams::reduced();
        let scenario = Scenario::reduced(1);
        // A CPI with the wrong shape panics inside the Doppler task.
        let bad = CCube::zeros([8, 2, 4]);
        let par = ParallelStap::for_scenario(params, NodeAssignment::tiny(), &scenario);
        let _ = par.run(vec![bad]);
    }
}
