//! World construction, CPI injection and result collection.

use crate::assignment::{
    NodeAssignment, Partitions, CFAR, DOPPLER, EASY_BF, EASY_WT, HARD_BF, HARD_WT, PC,
};
use crate::fault::{nan_corruptor, RuntimePolicy};
use crate::metrics::{CpiOutcome, PipelineHealth, PipelineTimings, TaskTiming};
use crate::msg::{tag, Edge, Msg, Payload};
use crate::tasks::{
    purge_late, recv_msg, run_cfar, run_doppler, run_easy_bf, run_easy_weight, run_hard_bf,
    run_hard_weight, run_pc, PipelinePools, Recvd, TaskCtx, TaskReport,
};
use stap_core::{Detection, StapParams};
use stap_cube::CCube;
use stap_math::CMat;
use stap_mp::{FaultPlan, World, WorldError};
use stap_radar::Scenario;
use std::fmt;
use std::time::Instant;

/// Why a pipeline run could not produce output.
#[derive(Debug)]
pub enum PipelineError {
    /// The injected input was rejected before any rank was spawned
    /// (wrong cube shape, empty CPI list).
    InvalidInput(String),
    /// A rank panicked and the failure was joined back (see
    /// [`stap_mp::WorldError`]).
    World(WorldError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::InvalidInput(m) => write!(f, "invalid pipeline input: {m}"),
            PipelineError::World(e) => write!(f, "pipeline {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<WorldError> for PipelineError {
    fn from(e: WorldError) -> Self {
        PipelineError::World(e)
    }
}

/// What a pipeline run returns.
#[derive(Debug)]
pub struct PipelineOutput {
    /// Detections per CPI, merged across CFAR nodes and sorted
    /// (bin, beam, range).
    pub detections: Vec<Vec<Detection>>,
    /// Per-task timings averaged over the measured CPIs plus measured
    /// pipeline rates. On a host with fewer cores than ranks these are
    /// functional timings, not Paragon performance — `stap-sim` models
    /// the latter.
    pub timings: PipelineTimings,
    /// Unified measured timeline (task spans + comm events + CPI
    /// marks). `None` unless the run was built with
    /// [`ParallelStap::with_tracing`].
    pub trace: Option<crate::trace::PipelineTrace>,
}

/// What one rank contributes to a run. Produced by
/// [`ParallelStap::run_rank`] on every rank (in-process thread or
/// cluster child process) and folded into a [`PipelineOutput`] by
/// [`ParallelStap::assemble`].
#[derive(Debug)]
pub enum RankResult {
    /// A task node's report: paper task index, local node index within
    /// the task, and its per-CPI report.
    Task {
        /// Task index (0..7, paper order).
        task: usize,
        /// Local node index within the task.
        node: usize,
        /// The node's timings, health counters and spans.
        report: TaskReport,
    },
    /// The driver rank's collected output.
    Driver(DriverResult),
}

/// Everything the driver rank collects: merged detections plus the
/// raw per-CPI timestamps the aggregation turns into throughput and
/// latency.
#[derive(Debug)]
pub struct DriverResult {
    /// Detections per CPI, merged across CFAR nodes and sorted.
    pub detections: Vec<Vec<Detection>>,
    /// Injection time of each CPI, seconds since the driver epoch.
    pub inject_t: Vec<f64>,
    /// Completion time of each CPI, seconds since the driver epoch.
    pub complete_t: Vec<f64>,
    /// Per-CPI outcome classification (fault-tolerant runs).
    pub outcomes: Vec<CpiOutcome>,
    /// Health counters observed at the driver.
    pub health: PipelineHealth,
}

/// The parallel pipelined STAP system.
pub struct ParallelStap {
    /// Algorithm parameters.
    pub params: StapParams,
    /// Node assignment.
    pub assign: NodeAssignment,
    /// Steering matrices per transmit-beam position.
    pub steering: Vec<CMat>,
    /// CPIs kept in flight by the driver (pipeline window).
    pub window: usize,
    /// Leading CPIs excluded from timing averages (paper: first 3).
    pub warmup: usize,
    /// Trailing CPIs excluded from timing averages (paper: last 2).
    pub cooldown: usize,
    /// Fault-tolerance policy for the task loops. Defaults to off
    /// (zero-overhead blocking receives, bit-identical to the non-FT
    /// pipeline).
    pub policy: RuntimePolicy,
    /// Deterministic fault-injection plan installed in the world.
    /// `None` (the default) builds a clean world.
    pub faults: Option<FaultPlan>,
    /// When true, the run records a full span timeline (task phases,
    /// comm events, CPI marks) into [`PipelineOutput::trace`]. Off by
    /// default: the untraced path performs no clock reads or
    /// allocations beyond the existing per-CPI timing.
    pub tracing: bool,
}

impl ParallelStap {
    /// Builds a runner from explicit steering matrices.
    pub fn new(params: StapParams, assign: NodeAssignment, steering: Vec<CMat>) -> Self {
        params.validate().expect("invalid parameters");
        assert!(!steering.is_empty(), "need at least one steering matrix");
        ParallelStap {
            params,
            assign,
            steering,
            window: 4,
            warmup: 3,
            cooldown: 2,
            policy: RuntimePolicy::default(),
            faults: None,
            tracing: false,
        }
    }

    /// Enables span tracing: the returned output carries a
    /// [`crate::trace::PipelineTrace`] merging every task node's
    /// per-CPI phase spans with every rank's communication events.
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Sets the runtime degradation policy (deadlines, retry budget,
    /// payload screening).
    pub fn with_policy(mut self, policy: RuntimePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Installs a deterministic fault-injection plan and, unless a
    /// policy was already set, switches the task loops to the
    /// fault-tolerant path (injecting faults into a non-tolerant
    /// pipeline would just panic it).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        if !self.policy.fault_tolerant {
            self.policy = RuntimePolicy::fault_tolerant();
        }
        self.faults = Some(plan);
        self
    }

    /// Builds a runner whose steering fans match
    /// [`stap_core::SequentialStap::for_scenario`].
    pub fn for_scenario(params: StapParams, assign: NodeAssignment, scenario: &Scenario) -> Self {
        let steering = scenario
            .transmit_beams
            .iter()
            .map(|&c| {
                scenario
                    .geom
                    .beam_fan(c, scenario.beam_half_width_deg / 2.0, params.m_beams)
            })
            .collect();
        ParallelStap::new(params, assign, steering)
    }

    /// Runs the pipeline over `cpis` (index, cube) pairs, one OS thread
    /// per node plus a driver thread. Panics on invalid input or a rank
    /// failure; use [`ParallelStap::try_run`] for recoverable errors.
    pub fn run(&self, cpis: Vec<CCube>) -> PipelineOutput {
        self.try_run(cpis).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`ParallelStap::run`] but validates the input cubes before
    /// any rank is spawned and joins rank panics back as structured
    /// [`PipelineError`]s instead of panicking the caller.
    pub fn try_run(&self, cpis: Vec<CCube>) -> Result<PipelineOutput, PipelineError> {
        self.validate_input(&cpis)?;
        let num_cpis = cpis.len();
        let parts = Partitions::new(&self.params, &self.assign);
        let mut world: World<Msg> = World::new(self.assign.world_size());
        if let Some(plan) = &self.faults {
            world = world
                .with_faults(plan.clone())
                .with_corruptor(nan_corruptor());
        }
        // One epoch shared by the comm recorder, the task spans and the
        // driver's CPI marks, so the merged timeline is coherent.
        let epoch = self.tracing.then(Instant::now);
        let sink = stap_mp::TraceSink::new();
        if let Some(e) = epoch {
            world = world.with_tracing(e, &sink, crate::msg::wire_bytes);
        }
        let parts_ref = &parts;
        let cpis_ref = &cpis;
        // One recycling pool per run, shared by every node thread:
        // receivers retire message buffers, senders draw packing buffers.
        let pools = PipelinePools::default();
        let pools_ref = &pools;

        let results = world.try_run_collect(|mut comm| {
            self.run_rank(&mut comm, cpis_ref, parts_ref, pools_ref, epoch)
        })?;
        Ok(self.assemble(num_cpis, results, sink.take(), &pools))
    }

    /// Checks that `cpis` is non-empty and every cube matches the
    /// configured `[k_range, j_channels, n_pulses]` shape. `try_run`
    /// calls this before spawning; the cluster parent calls it before
    /// launching rank processes.
    pub fn validate_input(&self, cpis: &[CCube]) -> Result<(), PipelineError> {
        if cpis.is_empty() {
            return Err(PipelineError::InvalidInput(
                "need at least one CPI".to_string(),
            ));
        }
        let want = [
            self.params.k_range,
            self.params.j_channels,
            self.params.n_pulses,
        ];
        for (i, c) in cpis.iter().enumerate() {
            if c.shape() != want {
                return Err(PipelineError::InvalidInput(format!(
                    "CPI {i} cube has shape {:?}, but StapParams requires \
                     [k_range, j_channels, n_pulses] = {want:?}",
                    c.shape()
                )));
            }
        }
        Ok(())
    }

    /// Runs exactly one rank of the pipeline to completion over `comm`
    /// and returns its contribution. This is the whole per-rank body of
    /// [`ParallelStap::try_run`], exposed so a cluster child process
    /// (which *is* one rank, on a wire-backed `Comm`) can execute the
    /// identical code path the in-process threads run.
    ///
    /// Task ranks only use `cpis` for its length; the driver rank
    /// extracts and injects the actual cubes.
    pub fn run_rank(
        &self,
        comm: &mut stap_mp::Comm<Msg>,
        cpis: &[CCube],
        parts: &Partitions,
        pools: &PipelinePools,
        epoch: Option<Instant>,
    ) -> RankResult {
        let rank = comm.rank();
        let ctx = TaskCtx {
            params: &self.params,
            assign: &self.assign,
            parts,
            steering: &self.steering,
            num_cpis: cpis.len(),
            pools,
            policy: &self.policy,
            epoch,
        };
        match self.assign.task_of_rank(rank) {
            Some((DOPPLER, local)) => RankResult::Task {
                task: DOPPLER,
                node: local,
                report: run_doppler(&ctx, comm, local),
            },
            Some((EASY_WT, local)) => RankResult::Task {
                task: EASY_WT,
                node: local,
                report: run_easy_weight(&ctx, comm, local),
            },
            Some((HARD_WT, local)) => RankResult::Task {
                task: HARD_WT,
                node: local,
                report: run_hard_weight(&ctx, comm, local),
            },
            Some((EASY_BF, local)) => RankResult::Task {
                task: EASY_BF,
                node: local,
                report: run_easy_bf(&ctx, comm, local),
            },
            Some((HARD_BF, local)) => RankResult::Task {
                task: HARD_BF,
                node: local,
                report: run_hard_bf(&ctx, comm, local),
            },
            Some((PC, local)) => RankResult::Task {
                task: PC,
                node: local,
                report: run_pc(&ctx, comm, local),
            },
            Some((CFAR, local)) => RankResult::Task {
                task: CFAR,
                node: local,
                report: run_cfar(&ctx, comm, local),
            },
            Some(_) => unreachable!("unknown task"),
            None => RankResult::Driver(self.run_driver(comm, cpis, parts, pools, epoch)),
        }
    }

    /// The driver rank: inject CPI slabs (windowed) and collect
    /// detections, recording injection and completion times and
    /// classifying each CPI's outcome.
    fn run_driver(
        &self,
        comm: &mut stap_mp::Comm<Msg>,
        cpis: &[CCube],
        parts: &Partitions,
        pools: &PipelinePools,
        epoch: Option<Instant>,
    ) -> DriverResult {
        let num_cpis = cpis.len();
        let window = self.window.max(1);
        let policy = &self.policy;
        let cfar_ranks: Vec<usize> = self.assign.rank_range(CFAR).collect();
        let mut detections: Vec<Vec<Detection>> = Vec::with_capacity(num_cpis);
        let mut outcomes: Vec<CpiOutcome> = Vec::with_capacity(num_cpis);
        let mut health = PipelineHealth::default();
        let mut inject_t = vec![0.0f64; num_cpis];
        let mut complete_t = vec![0.0f64; num_cpis];
        // Under tracing the driver clock shares the trace epoch so CPI
        // marks line up with the spans.
        let t0 = epoch.unwrap_or_else(Instant::now);
        let mut next_inject = 0usize;
        // `done` is simultaneously a tag, a checkpoint epoch and an
        // index; an enumerate rewrite would obscure it.
        #[allow(clippy::needless_range_loop)]
        for done in 0..num_cpis {
            comm.fault_checkpoint(done as u64);
            while next_inject < num_cpis && next_inject < done + window {
                let cube = &cpis[next_inject];
                inject_t[next_inject] = t0.elapsed().as_secs_f64();
                for (pn, kr) in parts.doppler_k.iter().enumerate() {
                    // Input slabs come from the shared pool too; the
                    // Doppler nodes retire them after use.
                    let buf = pools
                        .cx
                        .get(kr.len() * self.params.j_channels * self.params.n_pulses);
                    let slab = cube.extract_into(
                        kr.clone(),
                        0..self.params.j_channels,
                        0..self.params.n_pulses,
                        buf,
                    );
                    comm.send(
                        self.assign.rank_range(DOPPLER).start + pn,
                        tag(Edge::Input, next_inject),
                        Msg::new(next_inject, Payload::Cube(slab)),
                    );
                }
                next_inject += 1;
            }
            let mut merged = Vec::new();
            let mut lost = false;
            let mut degraded = false;
            for &src in &cfar_ranks {
                match recv_msg(
                    comm,
                    src,
                    tag(Edge::Output, done),
                    done,
                    policy,
                    policy.edge_timeout,
                    &mut health,
                ) {
                    Recvd::Data(Payload::Detections(d), deg) => {
                        degraded |= deg;
                        merged.extend(d);
                    }
                    Recvd::Data(other, _) => {
                        panic!("expected detections, got {other:?}")
                    }
                    Recvd::Gone => lost = true,
                }
            }
            merged.sort_by_key(|d| (d.bin, d.beam, d.range));
            complete_t[done] = t0.elapsed().as_secs_f64();
            outcomes.push(if lost {
                CpiOutcome::Dropped
            } else if degraded {
                CpiOutcome::DegradedStaleWeights
            } else {
                CpiOutcome::Ok
            });
            detections.push(if lost { Vec::new() } else { merged });
            if policy.fault_tolerant {
                purge_late(comm, done, &mut health);
            }
        }
        DriverResult {
            detections,
            inject_t,
            complete_t,
            outcomes,
            health,
        }
    }

    /// Folds per-rank results (however they were obtained: in-process
    /// threads or cluster child processes) plus the collected comm
    /// traces into the run's [`PipelineOutput`].
    pub fn assemble(
        &self,
        num_cpis: usize,
        results: Vec<RankResult>,
        comm_traces: Vec<stap_mp::RankTrace>,
        pools: &PipelinePools,
    ) -> PipelineOutput {
        let lo = self.warmup.min(num_cpis.saturating_sub(1));
        let hi = num_cpis.saturating_sub(self.cooldown).max(lo + 1);
        let measured: std::ops::Range<usize> = lo..hi;
        let mut tasks = [TaskTiming::default(); 7];
        let mut counts = [0usize; 7];
        let mut detections = Vec::new();
        let mut timings = PipelineTimings::default();
        let mut trace_tasks: Vec<crate::trace::TaskInterval> = Vec::new();
        let mut trace_cpis: Vec<crate::trace::CpiMark> = Vec::new();
        for r in results {
            match r {
                RankResult::Task {
                    task: t,
                    node: local,
                    report,
                } => {
                    for cpi in measured.clone() {
                        if let Some(tt) = report.timings.get(cpi) {
                            tasks[t].add(tt);
                            counts[t] += 1;
                        }
                    }
                    timings.health.merge(&report.health);
                    trace_tasks.extend(report.spans.iter().map(|&span| {
                        crate::trace::TaskInterval {
                            task: t,
                            node: local,
                            span,
                        }
                    }));
                }
                RankResult::Driver(DriverResult {
                    detections: d,
                    inject_t: inject,
                    complete_t: complete,
                    outcomes,
                    health,
                }) => {
                    let lat: Vec<f64> = measured.clone().map(|i| complete[i] - inject[i]).collect();
                    timings.measured_latency = mean(&lat);
                    let mut intervals: Vec<f64> = measured
                        .clone()
                        .skip(1)
                        .map(|i| complete[i] - complete[i - 1])
                        .collect();
                    if intervals.is_empty() && num_cpis > 1 {
                        // Too few measured CPIs to exclude warmup; use all.
                        intervals = (1..num_cpis)
                            .map(|i| complete[i] - complete[i - 1])
                            .collect();
                    }
                    let mean_int = mean(&intervals);
                    timings.measured_throughput = if mean_int > 0.0 { 1.0 / mean_int } else { 0.0 };
                    if self.tracing {
                        trace_cpis = (0..num_cpis)
                            .map(|cpi| crate::trace::CpiMark {
                                cpi,
                                inject_s: inject[cpi],
                                complete_s: complete[cpi],
                            })
                            .collect();
                    }
                    detections = d;
                    timings.health.merge(&health);
                    if self.policy.fault_tolerant {
                        for o in &outcomes {
                            match o {
                                CpiOutcome::Dropped => timings.health.dropped_cpis += 1,
                                CpiOutcome::DegradedStaleWeights => {
                                    timings.health.degraded_cpis += 1
                                }
                                CpiOutcome::Ok => {}
                            }
                        }
                        timings.outcomes = outcomes;
                    }
                }
            }
        }
        for t in 0..7 {
            if counts[t] > 0 {
                tasks[t] = tasks[t].scale(1.0 / counts[t] as f64);
            }
        }
        timings.tasks = tasks;
        timings.pool_cx = pools.cx.stats();
        timings.pool_real = pools.real.stats();
        let trace = self.tracing.then(|| {
            trace_tasks.sort_by_key(|iv| (iv.task, iv.node, iv.span.cpi));
            crate::trace::PipelineTrace {
                assign: self.assign,
                num_cpis,
                tasks: trace_tasks,
                comm: comm_traces,
                cpis: trace_cpis,
            }
        });
        PipelineOutput {
            detections,
            timings,
            trace,
        }
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stap_core::SequentialStap;

    /// The central invariant: the parallel pipeline produces the exact
    /// detections of the sequential reference.
    #[test]
    fn parallel_matches_sequential_reference() {
        let params = StapParams::reduced();
        let scenario = Scenario::reduced(77);
        let cpis: Vec<CCube> = scenario.stream(6).map(|(_, _, c)| c).collect();

        let mut seq = SequentialStap::for_scenario(params.clone(), &scenario);
        let want: Vec<Vec<Detection>> = cpis
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let beam = i % scenario.transmit_beams.len();
                let mut d = seq.process_cpi(beam, c).detections;
                d.sort_by_key(|d| (d.bin, d.beam, d.range));
                d
            })
            .collect();

        let par = ParallelStap::for_scenario(params, NodeAssignment::tiny(), &scenario);
        let got = par.run(cpis);
        assert_eq!(got.detections.len(), want.len());
        for (i, (g, w)) in got.detections.iter().zip(&want).enumerate() {
            assert_eq!(
                g.len(),
                w.len(),
                "CPI {i}: {} vs {} detections",
                g.len(),
                w.len()
            );
            for (gd, wd) in g.iter().zip(w) {
                assert_eq!((gd.bin, gd.beam, gd.range), (wd.bin, wd.beam, wd.range));
                assert!((gd.power - wd.power).abs() <= 1e-9 * wd.power.abs().max(1.0));
            }
        }
    }

    #[test]
    fn equivalence_holds_across_assignments() {
        let params = StapParams::reduced();
        let scenario = Scenario::reduced(5);
        let cpis: Vec<CCube> = scenario.stream(4).map(|(_, _, c)| c).collect();

        let baseline = ParallelStap::for_scenario(
            params.clone(),
            NodeAssignment([1, 1, 1, 1, 1, 1, 1]),
            &scenario,
        )
        .run(cpis.clone());

        for assign in [
            NodeAssignment([4, 2, 3, 2, 2, 3, 2]),
            NodeAssignment([2, 1, 4, 1, 2, 1, 3]),
        ] {
            let out =
                ParallelStap::for_scenario(params.clone(), assign, &scenario).run(cpis.clone());
            for (i, (a, b)) in out.detections.iter().zip(&baseline.detections).enumerate() {
                assert_eq!(a.len(), b.len(), "assignment {assign:?} CPI {i}");
                for (x, y) in a.iter().zip(b) {
                    assert_eq!((x.bin, x.beam, x.range), (y.bin, y.beam, y.range));
                }
            }
        }
    }

    #[test]
    fn multi_azimuth_streams_work() {
        let params = StapParams::reduced();
        let mut scenario = Scenario::reduced(9);
        scenario.transmit_beams = vec![-20.0, 0.0, 20.0];
        let cpis: Vec<CCube> = scenario.stream(7).map(|(_, _, c)| c).collect();

        let mut seq = SequentialStap::for_scenario(params.clone(), &scenario);
        let want: Vec<usize> = cpis
            .iter()
            .enumerate()
            .map(|(i, c)| seq.process_cpi(i % 3, c).detections.len())
            .collect();

        let par = ParallelStap::for_scenario(params, NodeAssignment::tiny(), &scenario);
        let got = par.run(cpis);
        let got_counts: Vec<usize> = got.detections.iter().map(|d| d.len()).collect();
        assert_eq!(got_counts, want);
    }

    #[test]
    fn timings_are_populated() {
        let params = StapParams::reduced();
        let scenario = Scenario::reduced(3);
        let cpis: Vec<CCube> = scenario.stream(6).map(|(_, _, c)| c).collect();
        let par = ParallelStap::for_scenario(params, NodeAssignment::tiny(), &scenario);
        let out = par.run(cpis);
        for t in 0..7 {
            assert!(
                out.timings.tasks[t].comp > 0.0,
                "task {t} compute time missing"
            );
        }
        assert!(out.timings.measured_throughput > 0.0);
        assert!(out.timings.measured_latency > 0.0);
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;

    /// A wrong-shape CPI cube must be rejected with a descriptive error
    /// before any rank thread is spawned — not surface as a worker
    /// panic deep inside the Doppler task.
    #[test]
    fn invalid_cube_shape_is_rejected_before_spawn() {
        let params = StapParams::reduced();
        let scenario = Scenario::reduced(1);
        let bad = CCube::zeros([8, 2, 4]);
        let par = ParallelStap::for_scenario(params, NodeAssignment::tiny(), &scenario);
        match par.try_run(vec![bad]) {
            Err(PipelineError::InvalidInput(msg)) => {
                assert!(msg.contains("CPI 0"), "unhelpful message: {msg}");
                assert!(msg.contains("[8, 2, 4]"), "missing got-shape: {msg}");
            }
            Err(other) => panic!("expected InvalidInput, got {other}"),
            Ok(_) => panic!("expected InvalidInput, got output"),
        }
        // The panicking `run` wrapper surfaces the same message.
        assert!(par.try_run(Vec::new()).is_err());
    }

    /// A panicking rank must surface as a panic from `run` (and an
    /// `Err` from `try_run`), not a silent hang: the liveness counter in
    /// stap-mp turns the dead rank into `Disconnected` errors on its
    /// peers, and the join layer converts the panic into a
    /// `WorldError` naming the rank.
    #[test]
    #[should_panic(expected = "panicked")]
    fn rank_panic_propagates_not_hangs() {
        let params = StapParams::reduced();
        let scenario = Scenario::reduced(1);
        let cpis: Vec<CCube> = scenario.stream(2).map(|(_, _, c)| c).collect();
        let par = ParallelStap::for_scenario(params, NodeAssignment::tiny(), &scenario)
            .with_faults(stap_mp::FaultPlan::seeded(11).panic_rank(0, 0));
        let _ = par.run(cpis);
    }
}
