//! Dense 3-D arrays in row-major order (last axis has unit stride).

use stap_math::Cx;
use std::ops::{Index, IndexMut, Range};

/// A dense 3-D array. `shape = [d0, d1, d2]` with `d2` contiguous.
#[derive(Clone, PartialEq, Debug)]
pub struct Cube<T> {
    shape: [usize; 3],
    data: Vec<T>,
}

/// Complex cube — the working type through beamforming.
pub type CCube = Cube<Cx>;
/// Real cube — pulse-compressed power and CFAR input.
pub type RCube = Cube<f64>;

impl<T: Copy + Default> Cube<T> {
    /// A cube of `Default` values with the given shape.
    pub fn zeros(shape: [usize; 3]) -> Self {
        Cube {
            shape,
            data: vec![T::default(); shape[0] * shape[1] * shape[2]],
        }
    }

    /// Builds a cube by evaluating `f(i, j, k)` in storage order.
    pub fn from_fn(shape: [usize; 3], f: impl FnMut(usize, usize, usize) -> T) -> Self {
        Cube::from_fn_in(shape, Vec::new(), f)
    }

    /// Like [`Cube::from_fn`] but building into a caller-provided buffer
    /// (typically recycled from a [`crate::BufferPool`]), so the
    /// steady-state packing path allocates nothing. The buffer's prior
    /// contents are discarded; element order is identical to
    /// [`Cube::from_fn`].
    pub fn from_fn_in(
        shape: [usize; 3],
        mut data: Vec<T>,
        mut f: impl FnMut(usize, usize, usize) -> T,
    ) -> Self {
        data.clear();
        data.reserve(shape[0] * shape[1] * shape[2]);
        for i in 0..shape[0] {
            for j in 0..shape[1] {
                for k in 0..shape[2] {
                    data.push(f(i, j, k));
                }
            }
        }
        Cube { shape, data }
    }

    /// Wraps an existing buffer. Panics when the length mismatches.
    pub fn from_vec(shape: [usize; 3], data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            shape[0] * shape[1] * shape[2],
            "buffer length does not match shape {shape:?}"
        );
        Cube { shape, data }
    }

    /// The shape `[d0, d1, d2]`.
    #[inline]
    pub fn shape(&self) -> [usize; 3] {
        self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the cube holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The backing buffer in storage order.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The backing buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the cube, returning the backing buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    #[inline(always)]
    fn offset(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.shape[0] && j < self.shape[1] && k < self.shape[2]);
        (i * self.shape[1] + j) * self.shape[2] + k
    }

    /// The contiguous lane `self[i, j, ..]`.
    #[inline]
    pub fn lane(&self, i: usize, j: usize) -> &[T] {
        let o = self.offset(i, j, 0);
        &self.data[o..o + self.shape[2]]
    }

    /// The contiguous lane `self[i, j, ..]`, mutably.
    #[inline]
    pub fn lane_mut(&mut self, i: usize, j: usize) -> &mut [T] {
        let o = self.offset(i, j, 0);
        let d2 = self.shape[2];
        &mut self.data[o..o + d2]
    }

    /// Copies the sub-block `r0 x r1 x r2` into a new cube.
    pub fn extract(&self, r0: Range<usize>, r1: Range<usize>, r2: Range<usize>) -> Cube<T> {
        self.extract_into(r0, r1, r2, Vec::new())
    }

    /// Like [`Cube::extract`] but copying into a caller-provided buffer
    /// (typically recycled from a [`crate::BufferPool`]). Byte-identical
    /// to [`Cube::extract`].
    pub fn extract_into(
        &self,
        r0: Range<usize>,
        r1: Range<usize>,
        r2: Range<usize>,
        mut data: Vec<T>,
    ) -> Cube<T> {
        assert!(
            r0.end <= self.shape[0] && r1.end <= self.shape[1] && r2.end <= self.shape[2],
            "extract range out of bounds"
        );
        let shape = [r0.len(), r1.len(), r2.len()];
        data.clear();
        data.reserve(shape[0] * shape[1] * shape[2]);
        for i in r0 {
            for j in r1.clone() {
                let o = self.offset(i, j, r2.start);
                data.extend_from_slice(&self.data[o..o + r2.len()]);
            }
        }
        Cube { shape, data }
    }

    /// Copies a gathered subset of axis-0 indices (the paper's "data
    /// collection": only the range cells a weight task needs are packed).
    pub fn gather_axis0(&self, indices: &[usize]) -> Cube<T> {
        let plane = self.shape[1] * self.shape[2];
        let mut data = Vec::with_capacity(indices.len() * plane);
        for &i in indices {
            assert!(i < self.shape[0], "gather index {i} out of bounds");
            data.extend_from_slice(&self.data[i * plane..(i + 1) * plane]);
        }
        Cube {
            shape: [indices.len(), self.shape[1], self.shape[2]],
            data,
        }
    }

    /// Writes `sub` into this cube at `offset` (element-wise copy).
    pub fn place(&mut self, offset: [usize; 3], sub: &Cube<T>) {
        let s = sub.shape;
        assert!(
            offset[0] + s[0] <= self.shape[0]
                && offset[1] + s[1] <= self.shape[1]
                && offset[2] + s[2] <= self.shape[2],
            "place out of bounds: offset {offset:?} + {s:?} > {:?}",
            self.shape
        );
        for i in 0..s[0] {
            for j in 0..s[1] {
                let src = sub.lane(i, j);
                let dsto = self.offset(offset[0] + i, offset[1] + j, offset[2]);
                self.data[dsto..dsto + s[2]].copy_from_slice(src);
            }
        }
    }

    /// A full copy with axes permuted: output axis `i` is input axis
    /// `perm[i]`, i.e. `out[y0, y1, y2] = self[x0, x1, x2]` where
    /// `y_i = x_{perm[i]}`.
    pub fn permute(&self, perm: [usize; 3]) -> Cube<T> {
        self.extract_permuted(0..self.shape[0], 0..self.shape[1], 0..self.shape[2], perm)
    }

    /// Extracts a sub-block *and* permutes it in one pass — the "data
    /// reorganization" copy of Fig. 8. Ranges are in *source* coordinates;
    /// the output shape is the permuted block shape.
    ///
    /// This is deliberately a strided copy: on the Paragon this is where
    /// the cache-miss cost the paper discusses is paid, and the machine
    /// model charges for it per element.
    pub fn extract_permuted(
        &self,
        r0: Range<usize>,
        r1: Range<usize>,
        r2: Range<usize>,
        perm: [usize; 3],
    ) -> Cube<T> {
        self.extract_permuted_into(r0, r1, r2, perm, Vec::new())
    }

    /// Like [`Cube::extract_permuted`] but copying into a caller-provided
    /// buffer (typically recycled from a [`crate::BufferPool`]), so the
    /// steady-state redistribution pack path allocates nothing.
    /// Byte-identical to [`Cube::extract_permuted`].
    ///
    /// **Run fusion rule**: writing `st[i]` for the source stride of
    /// output axis `i`, the gather is a sequence of `copy_from_slice`
    /// runs whenever `st[2] == 1` (the output's inner axis is the
    /// source's inner axis). The run starts at length `out_shape[2]` and
    /// folds outer axes in while their stride equals the current run
    /// length, so an identity permutation degenerates to one `memcpy`.
    /// When `st[2] != 1` the runs would all be length 1; instead a
    /// transpose-blocked fallback tiles the unit-source-stride output
    /// axis against the inner output axis so each 16x16 tile reuses the
    /// source cache lines it pulls.
    pub fn extract_permuted_into(
        &self,
        r0: Range<usize>,
        r1: Range<usize>,
        r2: Range<usize>,
        perm: [usize; 3],
        mut data: Vec<T>,
    ) -> Cube<T> {
        assert!(is_permutation(perm), "invalid permutation {perm:?}");
        assert!(
            r0.end <= self.shape[0] && r1.end <= self.shape[1] && r2.end <= self.shape[2],
            "extract range out of bounds"
        );
        let src_ranges = [r0, r1, r2];
        let out_shape = [
            src_ranges[perm[0]].len(),
            src_ranges[perm[1]].len(),
            src_ranges[perm[2]].len(),
        ];
        let total = out_shape[0] * out_shape[1] * out_shape[2];
        data.clear();
        data.reserve(total);
        let base = [
            src_ranges[0].start,
            src_ranges[1].start,
            src_ranges[2].start,
        ];
        // Source strides per *output* axis plus the block's base offset:
        // src_index = base_off + y0*st[0] + y1*st[1] + y2*st[2].
        let sstr = [self.shape[1] * self.shape[2], self.shape[2], 1];
        let st = [sstr[perm[0]], sstr[perm[1]], sstr[perm[2]]];
        let base_off = base[0] * sstr[0] + base[1] * sstr[1] + base[2] * sstr[2];

        if total == 0 {
            return Cube {
                shape: out_shape,
                data,
            };
        }

        if st[2] == 1 {
            // Maximal-run fusion over the contiguous inner axis.
            let mut run = out_shape[2];
            if st[1] == run {
                run *= out_shape[1];
                if st[0] == run {
                    // Fully contiguous: one memcpy.
                    run *= out_shape[0];
                    data.extend_from_slice(&self.data[base_off..base_off + run]);
                } else {
                    for y0 in 0..out_shape[0] {
                        let o = base_off + y0 * st[0];
                        data.extend_from_slice(&self.data[o..o + run]);
                    }
                }
            } else {
                for y0 in 0..out_shape[0] {
                    let o0 = base_off + y0 * st[0];
                    for y1 in 0..out_shape[1] {
                        let o = o0 + y1 * st[1];
                        data.extend_from_slice(&self.data[o..o + run]);
                    }
                }
            }
        } else {
            // Length-1 runs: transpose-blocked gather. One output axis
            // `a` walks the source with unit stride (perm[a] == 2);
            // tile it against the inner output axis. For 16-byte
            // payloads (`Cx`, the redistribution wire type) the inner
            // strided row runs through the dispatched SIMD gather —
            // pure data movement, byte-identical to the scalar copy.
            const B: usize = 16;
            let a = if perm[0] == 2 { 0 } else { 1 };
            let b = 1 - a;
            let ost = [out_shape[1] * out_shape[2], out_shape[2], 1];
            data.resize(total, T::default());
            let simd_16b = std::mem::size_of::<T>() == 16;
            for yb in 0..out_shape[b] {
                let sb = base_off + yb * st[b];
                let ob = yb * ost[b];
                let mut ya0 = 0;
                while ya0 < out_shape[a] {
                    let ya1 = (ya0 + B).min(out_shape[a]);
                    let mut y20 = 0;
                    while y20 < out_shape[2] {
                        let y21 = (y20 + B).min(out_shape[2]);
                        for ya in ya0..ya1 {
                            let srow = sb + ya; // st[a] == 1
                            let orow = ob + ya * ost[a];
                            if simd_16b {
                                // Bounds of the strided row (also
                                // checked by the asserts below): last
                                // read is srow + (y21-1)*st[2], last
                                // write orow + y21 - 1.
                                assert!(srow + (y21 - 1) * st[2] < self.data.len());
                                assert!(orow + y21 <= data.len());
                                // SAFETY: `T` is `Copy` with size 16;
                                // ranges asserted in bounds; source
                                // and destination buffers are distinct.
                                unsafe {
                                    stap_math::simd::gather_16b_strided(
                                        data.as_mut_ptr().add(orow + y20) as *mut u8,
                                        self.data.as_ptr().add(srow + y20 * st[2]) as *const u8,
                                        y21 - y20,
                                        st[2],
                                    );
                                }
                            } else {
                                for y2 in y20..y21 {
                                    data[orow + y2] = self.data[srow + y2 * st[2]];
                                }
                            }
                        }
                        y20 = y21;
                    }
                    ya0 = ya1;
                }
            }
        }
        Cube {
            shape: out_shape,
            data,
        }
    }

    /// Element-wise map into a cube of another type.
    pub fn map<U: Copy + Default>(&self, f: impl Fn(T) -> U) -> Cube<U> {
        Cube {
            shape: self.shape,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }
}

/// True when `perm` is a permutation of `{0, 1, 2}`.
fn is_permutation(perm: [usize; 3]) -> bool {
    let mut seen = [false; 3];
    for p in perm {
        if p > 2 || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

impl CCube {
    /// Largest absolute element difference against `rhs` (test helper).
    pub fn max_abs_diff(&self, rhs: &CCube) -> f64 {
        assert_eq!(self.shape, rhs.shape, "shape mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// True when every element is finite (no NaN/Inf in either part).
    /// Task boundaries in the fault-tolerant pipeline screen payloads
    /// with this before admitting them into double-buffered state.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl RCube {
    /// True when every element is finite (no NaN/Inf).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl<T: Copy + Default> Index<(usize, usize, usize)> for Cube<T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, (i, j, k): (usize, usize, usize)) -> &T {
        &self.data[self.offset(i, j, k)]
    }
}

impl<T: Copy + Default> IndexMut<(usize, usize, usize)> for Cube<T> {
    #[inline(always)]
    fn index_mut(&mut self, (i, j, k): (usize, usize, usize)) -> &mut T {
        let o = self.offset(i, j, k);
        &mut self.data[o]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numbered(shape: [usize; 3]) -> Cube<f64> {
        let mut c = 0.0;
        Cube::from_fn(shape, |_, _, _| {
            c += 1.0;
            c
        })
    }

    #[test]
    fn storage_order_is_row_major() {
        let c = numbered([2, 3, 4]);
        assert_eq!(c[(0, 0, 0)], 1.0);
        assert_eq!(c[(0, 0, 3)], 4.0);
        assert_eq!(c[(0, 1, 0)], 5.0);
        assert_eq!(c[(1, 0, 0)], 13.0);
        assert_eq!(c.lane(1, 2), &[21.0, 22.0, 23.0, 24.0]);
    }

    #[test]
    fn extract_matches_indexing() {
        let c = numbered([4, 5, 6]);
        let e = c.extract(1..3, 2..5, 0..4);
        assert_eq!(e.shape(), [2, 3, 4]);
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    assert_eq!(e[(i, j, k)], c[(i + 1, j + 2, k)]);
                }
            }
        }
    }

    #[test]
    fn place_reverses_extract() {
        let c = numbered([4, 5, 6]);
        let e = c.extract(1..3, 2..5, 1..5);
        let mut d = Cube::zeros([4, 5, 6]);
        d.place([1, 2, 1], &e);
        for i in 1..3 {
            for j in 2..5 {
                for k in 1..5 {
                    assert_eq!(d[(i, j, k)], c[(i, j, k)]);
                }
            }
        }
        assert_eq!(d[(0, 0, 0)], 0.0);
    }

    #[test]
    fn permute_identity() {
        let c = numbered([3, 4, 5]);
        assert_eq!(c.permute([0, 1, 2]), c);
    }

    #[test]
    fn permute_moves_elements_correctly() {
        let c = numbered([2, 3, 4]);
        // out[y0,y1,y2] = c[x0,x1,x2] with y_i = x_perm[i]; so for
        // perm = [2,0,1]: out[k,i,j] = c[i,j,k].
        let p = c.permute([2, 0, 1]);
        assert_eq!(p.shape(), [4, 2, 3]);
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    assert_eq!(p[(k, i, j)], c[(i, j, k)]);
                }
            }
        }
    }

    #[test]
    fn permute_twice_with_inverse_is_identity() {
        let c = numbered([3, 4, 2]);
        let perm = [1, 2, 0];
        // inverse of perm: inv[perm[i]] = i -> inv = [2, 0, 1]
        let inv = [2, 0, 1];
        assert_eq!(c.permute(perm).permute(inv), c);
    }

    #[test]
    fn extract_permuted_equals_extract_then_permute() {
        let c = numbered([5, 6, 7]);
        let perm = [2, 0, 1];
        let a = c.extract_permuted(1..4, 2..6, 3..7, perm);
        let b = c.extract(1..4, 2..6, 3..7).permute(perm);
        assert_eq!(a, b);
    }

    #[test]
    fn all_six_permutations_match_reference_gather() {
        // Exercises both the run-fused path (perm[2] == 2) and the
        // transpose-blocked fallback (perm[2] != 2), including tiles
        // larger than the 16-element block.
        let c = numbered([5, 19, 37]);
        for perm in [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ] {
            let got = c.extract_permuted(1..4, 2..19, 3..36, perm);
            let ranges = [1..4usize, 2..19, 3..36];
            assert_eq!(
                got.shape(),
                [
                    ranges[perm[0]].len(),
                    ranges[perm[1]].len(),
                    ranges[perm[2]].len()
                ],
                "{perm:?}"
            );
            for y0 in 0..got.shape()[0] {
                for y1 in 0..got.shape()[1] {
                    for y2 in 0..got.shape()[2] {
                        let mut x = [0usize; 3];
                        x[perm[0]] = ranges[perm[0]].start + y0;
                        x[perm[1]] = ranges[perm[1]].start + y1;
                        x[perm[2]] = ranges[perm[2]].start + y2;
                        assert_eq!(
                            got[(y0, y1, y2)],
                            c[(x[0], x[1], x[2])],
                            "{perm:?} at ({y0},{y1},{y2})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gather_axis0_selects_planes() {
        let c = numbered([6, 2, 3]);
        let g = c.gather_axis0(&[0, 2, 5]);
        assert_eq!(g.shape(), [3, 2, 3]);
        for j in 0..2 {
            for k in 0..3 {
                assert_eq!(g[(0, j, k)], c[(0, j, k)]);
                assert_eq!(g[(1, j, k)], c[(2, j, k)]);
                assert_eq!(g[(2, j, k)], c[(5, j, k)]);
            }
        }
    }

    #[test]
    fn map_converts_types() {
        let c = numbered([2, 2, 2]);
        let m = c.map(|x| x as i64);
        assert_eq!(m[(1, 1, 1)], 8);
    }

    #[test]
    #[should_panic(expected = "invalid permutation")]
    fn bad_permutation_panics() {
        numbered([2, 2, 2]).permute([0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn extract_out_of_bounds_panics() {
        numbered([2, 2, 2]).extract(0..3, 0..1, 0..1);
    }
}
