//! Recycling buffer pools for redistribution messages.
//!
//! Every redistribution block the pipeline ships — Doppler slabs to the
//! weight and beamforming tasks, beamformed bins to pulse compression,
//! power cubes to CFAR — used to be a freshly allocated `Vec` that died
//! on the receiving node after unpacking. At the paper's CPI rate that
//! is hundreds of allocations per CPI, all of sizes that repeat exactly
//! every cycle. A [`BufferPool`] keeps a freelist of retired buffers
//! keyed by power-of-two *size class*; senders draw packing buffers from
//! the pool and receivers return consumed message buffers, so after a
//! warmup CPI the steady state performs no heap allocation for packing.
//!
//! [`SharedBufferPool`] wraps the freelist in `Arc<Mutex<..>>` so the
//! threaded runtime's nodes (which exchange ownership of message buffers
//! across threads) recycle into one process-wide pool: the global
//! put/get balance holds exactly because every buffer sent by one node
//! is received — and retired — by another.

use crate::cube::Cube;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Default upper bound on free buffers retained per size class. Bounds
/// pool memory at `MAX_FREE_PER_CLASS * class_size` per class; the
/// pipeline's steady state needs far fewer (one per in-flight block).
/// A [`BufferPool::reserve`] call raises the bound for its class: a
/// demand-driven reservation *is* the steady-state population count
/// (e.g. `streams * queue_depth` admitted CPI cubes), so capping it at
/// the default would reintroduce the misses it exists to prevent.
const MAX_FREE_PER_CLASS: usize = 64;

/// Pool traffic counters (for benchmarks and tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `get` calls served from the freelist (no allocation).
    pub hits: u64,
    /// `get` calls that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers returned through `put`.
    pub returned: u64,
    /// Returned buffers dropped because their class was full.
    pub dropped: u64,
}

/// A freelist of retired `Vec<T>` buffers keyed by power-of-two size
/// class. `get(c)` pops from class `next_power_of_two(c)`; `put` files a
/// buffer under the largest class its capacity can serve, so any hit is
/// guaranteed to have enough capacity and reuse never reallocates.
#[derive(Default)]
pub struct BufferPool<T> {
    free: HashMap<usize, Vec<Vec<T>>>,
    /// Per-class retention overrides from [`BufferPool::reserve`].
    reserved: HashMap<usize, usize>,
    stats: PoolStats,
}

impl<T> BufferPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        BufferPool {
            free: HashMap::new(),
            reserved: HashMap::new(),
            stats: PoolStats::default(),
        }
    }

    /// An empty buffer with capacity at least `capacity`, recycled from
    /// the freelist when the matching size class has one.
    pub fn get(&mut self, capacity: usize) -> Vec<T> {
        if capacity == 0 {
            return Vec::new();
        }
        let class = capacity.next_power_of_two();
        match self.free.get_mut(&class).and_then(Vec::pop) {
            Some(mut buf) => {
                self.stats.hits += 1;
                buf.clear();
                debug_assert!(buf.capacity() >= capacity);
                buf
            }
            None => {
                self.stats.misses += 1;
                Vec::with_capacity(class)
            }
        }
    }

    /// Returns a retired buffer to the pool for reuse. Contents are
    /// irrelevant; only the allocation is recycled.
    pub fn put(&mut self, buf: Vec<T>) {
        let cap = buf.capacity();
        if cap == 0 {
            return;
        }
        self.stats.returned += 1;
        // Largest class this buffer can serve: any get(c) with
        // next_power_of_two(c) == class needs capacity >= class <= cap.
        let class = 1usize << (usize::BITS - 1 - cap.leading_zeros());
        let bound = self.retention(class);
        let slot = self.free.entry(class).or_default();
        if slot.len() < bound {
            slot.push(buf);
        } else {
            self.stats.dropped += 1;
        }
    }

    /// Retention bound for a class: the default, unless a reservation
    /// declared a larger steady-state population.
    fn retention(&self, class: usize) -> usize {
        self.reserved
            .get(&class)
            .copied()
            .unwrap_or(0)
            .max(MAX_FREE_PER_CLASS)
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Number of buffers currently on the freelist.
    pub fn free_buffers(&self) -> usize {
        self.free.values().map(Vec::len).sum()
    }

    /// Pre-warms the size class serving `get(capacity)` so it holds at
    /// least `count` free buffers, and raises the class's retention
    /// bound to `count` when that exceeds the default. Demand-driven
    /// sizing hint for multi-stream runs: callers that know how many
    /// blocks of each size will be in flight reserve them up front, and
    /// the steady state then records zero misses instead of paying one
    /// allocating miss per class per warmup CPI. Reservation does not
    /// touch the hit/miss counters.
    pub fn reserve(&mut self, capacity: usize, count: usize) {
        if capacity == 0 || count == 0 {
            return;
        }
        let class = capacity.next_power_of_two();
        let cur = self.reserved.entry(class).or_default();
        *cur = (*cur).max(count);
        let slot = self.free.entry(class).or_default();
        while slot.len() < count {
            slot.push(Vec::with_capacity(class));
        }
    }
}

/// A cloneable, thread-safe handle to a [`BufferPool`] shared by every
/// node of the threaded pipeline runtime.
pub struct SharedBufferPool<T> {
    inner: Arc<Mutex<BufferPool<T>>>,
}

impl<T> Clone for SharedBufferPool<T> {
    fn clone(&self) -> Self {
        SharedBufferPool {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Default for SharedBufferPool<T> {
    fn default() -> Self {
        SharedBufferPool::new()
    }
}

impl<T> SharedBufferPool<T> {
    /// A fresh shared pool.
    pub fn new() -> Self {
        SharedBufferPool {
            inner: Arc::new(Mutex::new(BufferPool::new())),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BufferPool<T>> {
        // A node that panics mid-CPI (e.g. on a malformed cube) poisons
        // the mutex; peers only touch the freelist, which is always in a
        // consistent state, so recover rather than cascade a different
        // panic over the one under test.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// See [`BufferPool::get`].
    pub fn get(&self, capacity: usize) -> Vec<T> {
        self.lock().get(capacity)
    }

    /// See [`BufferPool::put`].
    pub fn put(&self, buf: Vec<T>) {
        self.lock().put(buf)
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> PoolStats {
        self.lock().stats()
    }

    /// See [`BufferPool::reserve`].
    pub fn reserve(&self, capacity: usize, count: usize) {
        self.lock().reserve(capacity, count)
    }
}

impl<T: Copy + Default> SharedBufferPool<T> {
    /// The pooled analogue of [`Cube::from_fn`]: builds the cube in a
    /// recycled buffer. Element order (and therefore message bytes) is
    /// identical to the allocating path.
    pub fn take_cube(&self, shape: [usize; 3], f: impl FnMut(usize, usize, usize) -> T) -> Cube<T> {
        let total = shape[0] * shape[1] * shape[2];
        Cube::from_fn_in(shape, self.get(total), f)
    }

    /// Retires a consumed message cube, returning its backing buffer to
    /// the pool.
    pub fn recycle(&self, cube: Cube<T>) {
        self.put(cube.into_vec())
    }

    /// The pooled analogue of `Cube::clone`: copies `src` into a
    /// recycled buffer in one slice copy instead of an element-wise
    /// rebuild. This is the ingestion fast path — a submitted CPI is
    /// one `memcpy` into the pool, not 16k closure calls.
    pub fn take_cube_from(&self, src: &Cube<T>) -> Cube<T> {
        let mut buf = self.get(src.len());
        buf.extend_from_slice(src.as_slice());
        Cube::from_vec(src.shape(), buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_reuses_allocation() {
        let mut pool: BufferPool<f64> = BufferPool::new();
        let mut a = pool.get(100);
        a.resize(100, 1.0);
        let ptr = a.as_ptr();
        pool.put(a);
        let b = pool.get(90); // same class (128)
        assert_eq!(b.as_ptr(), ptr, "must reuse the retired buffer");
        assert!(b.is_empty());
        assert!(b.capacity() >= 90);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.returned), (1, 1, 1));
    }

    #[test]
    fn different_classes_do_not_mix() {
        let mut pool: BufferPool<u8> = BufferPool::new();
        let small = pool.get(10);
        pool.put(small);
        // Class 16 cannot serve a request that needs 1024.
        let big = pool.get(1000);
        assert!(big.capacity() >= 1000);
        assert_eq!(pool.stats().misses, 2);
    }

    #[test]
    fn zero_capacity_requests_are_free() {
        let mut pool: BufferPool<u8> = BufferPool::new();
        let v = pool.get(0);
        assert_eq!(v.capacity(), 0);
        pool.put(v);
        assert_eq!(pool.stats(), PoolStats::default());
    }

    #[test]
    fn class_retention_is_bounded() {
        let mut pool: BufferPool<u8> = BufferPool::new();
        for _ in 0..(MAX_FREE_PER_CLASS + 5) {
            pool.put(Vec::with_capacity(64));
        }
        assert_eq!(pool.free_buffers(), MAX_FREE_PER_CLASS);
        assert_eq!(pool.stats().dropped, 5);
    }

    #[test]
    fn reserve_prewarms_class_without_touching_stats() {
        let mut pool: BufferPool<f64> = BufferPool::new();
        pool.reserve(100, 3);
        assert_eq!(pool.free_buffers(), 3);
        assert_eq!(pool.stats(), PoolStats::default(), "reserve is not traffic");
        // Re-reserving an already-warm class is a no-op.
        pool.reserve(100, 2);
        assert_eq!(pool.free_buffers(), 3);
        for _ in 0..3 {
            let b = pool.get(100);
            assert!(b.capacity() >= 100);
        }
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (3, 0), "reserved gets must all hit");
        // A reservation beyond the default bound raises the bound: the
        // caller declared the steady-state population, so both the
        // pre-warm and subsequent put() retention honor it.
        pool.reserve(8, MAX_FREE_PER_CLASS + 10);
        assert_eq!(pool.free_buffers(), MAX_FREE_PER_CLASS + 10);
        let b = pool.get(8);
        pool.put(b);
        assert_eq!(pool.stats().dropped, 0, "reserved class must retain");
    }

    #[test]
    fn shared_pool_recycles_cubes_across_clones() {
        let pool: SharedBufferPool<f64> = SharedBufferPool::new();
        let sender = pool.clone();
        let cube = sender.take_cube([2, 3, 4], |i, j, k| (i + 10 * j + 100 * k) as f64);
        let want = Cube::from_fn([2, 3, 4], |i, j, k| (i + 10 * j + 100 * k) as f64);
        assert_eq!(cube, want, "pooled from_fn must match allocating from_fn");
        pool.recycle(cube);
        let again = sender.take_cube([2, 3, 3], |_, _, _| 0.0);
        assert_eq!(again.shape(), [2, 3, 3]);
        let s = pool.stats();
        assert_eq!(s.hits, 1, "second take must hit the freelist");
    }
}
