//! Recycling buffer pools for redistribution messages.
//!
//! Every redistribution block the pipeline ships — Doppler slabs to the
//! weight and beamforming tasks, beamformed bins to pulse compression,
//! power cubes to CFAR — used to be a freshly allocated `Vec` that died
//! on the receiving node after unpacking. At the paper's CPI rate that
//! is hundreds of allocations per CPI, all of sizes that repeat exactly
//! every cycle. A [`BufferPool`] keeps a freelist of retired buffers
//! keyed by power-of-two *size class*; senders draw packing buffers from
//! the pool and receivers return consumed message buffers, so after a
//! warmup CPI the steady state performs no heap allocation for packing.
//!
//! [`SharedBufferPool`] wraps the freelist in `Arc<Mutex<..>>` so the
//! threaded runtime's nodes (which exchange ownership of message buffers
//! across threads) recycle into one process-wide pool: the global
//! put/get balance holds exactly because every buffer sent by one node
//! is received — and retired — by another.

use crate::cube::Cube;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Upper bound on free buffers retained per size class. Bounds pool
/// memory at `MAX_FREE_PER_CLASS * class_size` per class; the pipeline's
/// steady state needs far fewer (one per in-flight block).
const MAX_FREE_PER_CLASS: usize = 64;

/// Pool traffic counters (for benchmarks and tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `get` calls served from the freelist (no allocation).
    pub hits: u64,
    /// `get` calls that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers returned through `put`.
    pub returned: u64,
    /// Returned buffers dropped because their class was full.
    pub dropped: u64,
}

/// A freelist of retired `Vec<T>` buffers keyed by power-of-two size
/// class. `get(c)` pops from class `next_power_of_two(c)`; `put` files a
/// buffer under the largest class its capacity can serve, so any hit is
/// guaranteed to have enough capacity and reuse never reallocates.
#[derive(Default)]
pub struct BufferPool<T> {
    free: HashMap<usize, Vec<Vec<T>>>,
    stats: PoolStats,
}

impl<T> BufferPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        BufferPool {
            free: HashMap::new(),
            stats: PoolStats::default(),
        }
    }

    /// An empty buffer with capacity at least `capacity`, recycled from
    /// the freelist when the matching size class has one.
    pub fn get(&mut self, capacity: usize) -> Vec<T> {
        if capacity == 0 {
            return Vec::new();
        }
        let class = capacity.next_power_of_two();
        match self.free.get_mut(&class).and_then(Vec::pop) {
            Some(mut buf) => {
                self.stats.hits += 1;
                buf.clear();
                debug_assert!(buf.capacity() >= capacity);
                buf
            }
            None => {
                self.stats.misses += 1;
                Vec::with_capacity(class)
            }
        }
    }

    /// Returns a retired buffer to the pool for reuse. Contents are
    /// irrelevant; only the allocation is recycled.
    pub fn put(&mut self, buf: Vec<T>) {
        let cap = buf.capacity();
        if cap == 0 {
            return;
        }
        self.stats.returned += 1;
        // Largest class this buffer can serve: any get(c) with
        // next_power_of_two(c) == class needs capacity >= class <= cap.
        let class = 1usize << (usize::BITS - 1 - cap.leading_zeros());
        let slot = self.free.entry(class).or_default();
        if slot.len() < MAX_FREE_PER_CLASS {
            slot.push(buf);
        } else {
            self.stats.dropped += 1;
        }
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Number of buffers currently on the freelist.
    pub fn free_buffers(&self) -> usize {
        self.free.values().map(Vec::len).sum()
    }
}

/// A cloneable, thread-safe handle to a [`BufferPool`] shared by every
/// node of the threaded pipeline runtime.
pub struct SharedBufferPool<T> {
    inner: Arc<Mutex<BufferPool<T>>>,
}

impl<T> Clone for SharedBufferPool<T> {
    fn clone(&self) -> Self {
        SharedBufferPool {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Default for SharedBufferPool<T> {
    fn default() -> Self {
        SharedBufferPool::new()
    }
}

impl<T> SharedBufferPool<T> {
    /// A fresh shared pool.
    pub fn new() -> Self {
        SharedBufferPool {
            inner: Arc::new(Mutex::new(BufferPool::new())),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BufferPool<T>> {
        // A node that panics mid-CPI (e.g. on a malformed cube) poisons
        // the mutex; peers only touch the freelist, which is always in a
        // consistent state, so recover rather than cascade a different
        // panic over the one under test.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// See [`BufferPool::get`].
    pub fn get(&self, capacity: usize) -> Vec<T> {
        self.lock().get(capacity)
    }

    /// See [`BufferPool::put`].
    pub fn put(&self, buf: Vec<T>) {
        self.lock().put(buf)
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> PoolStats {
        self.lock().stats()
    }
}

impl<T: Copy + Default> SharedBufferPool<T> {
    /// The pooled analogue of [`Cube::from_fn`]: builds the cube in a
    /// recycled buffer. Element order (and therefore message bytes) is
    /// identical to the allocating path.
    pub fn take_cube(&self, shape: [usize; 3], f: impl FnMut(usize, usize, usize) -> T) -> Cube<T> {
        let total = shape[0] * shape[1] * shape[2];
        Cube::from_fn_in(shape, self.get(total), f)
    }

    /// Retires a consumed message cube, returning its backing buffer to
    /// the pool.
    pub fn recycle(&self, cube: Cube<T>) {
        self.put(cube.into_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_reuses_allocation() {
        let mut pool: BufferPool<f64> = BufferPool::new();
        let mut a = pool.get(100);
        a.resize(100, 1.0);
        let ptr = a.as_ptr();
        pool.put(a);
        let b = pool.get(90); // same class (128)
        assert_eq!(b.as_ptr(), ptr, "must reuse the retired buffer");
        assert!(b.is_empty());
        assert!(b.capacity() >= 90);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.returned), (1, 1, 1));
    }

    #[test]
    fn different_classes_do_not_mix() {
        let mut pool: BufferPool<u8> = BufferPool::new();
        let small = pool.get(10);
        pool.put(small);
        // Class 16 cannot serve a request that needs 1024.
        let big = pool.get(1000);
        assert!(big.capacity() >= 1000);
        assert_eq!(pool.stats().misses, 2);
    }

    #[test]
    fn zero_capacity_requests_are_free() {
        let mut pool: BufferPool<u8> = BufferPool::new();
        let v = pool.get(0);
        assert_eq!(v.capacity(), 0);
        pool.put(v);
        assert_eq!(pool.stats(), PoolStats::default());
    }

    #[test]
    fn class_retention_is_bounded() {
        let mut pool: BufferPool<u8> = BufferPool::new();
        for _ in 0..(MAX_FREE_PER_CLASS + 5) {
            pool.put(Vec::with_capacity(64));
        }
        assert_eq!(pool.free_buffers(), MAX_FREE_PER_CLASS);
        assert_eq!(pool.stats().dropped, 5);
    }

    #[test]
    fn shared_pool_recycles_cubes_across_clones() {
        let pool: SharedBufferPool<f64> = SharedBufferPool::new();
        let sender = pool.clone();
        let cube = sender.take_cube([2, 3, 4], |i, j, k| (i + 10 * j + 100 * k) as f64);
        let want = Cube::from_fn([2, 3, 4], |i, j, k| (i + 10 * j + 100 * k) as f64);
        assert_eq!(cube, want, "pooled from_fn must match allocating from_fn");
        pool.recycle(cube);
        let again = sender.take_cube([2, 3, 3], |_, _, _| 0.0);
        assert_eq!(again.shape(), [2, 3, 3]);
        let s = pool.stats();
        assert_eq!(s.hits, 1, "second take must hit the freelist");
    }
}
