//! Block partitioning of cube axes across compute nodes.
//!
//! "Each task i is parallelized by evenly partitioning its work load among
//! P_i processors" — every task in the pipeline owns a contiguous block of
//! one axis of its input cube. [`block_ranges`] produces the balanced
//! decomposition (remainder elements go to the lowest ranks, so no two
//! nodes differ by more than one element), and [`AxisPartition`] names
//! which axis a task distributes.

use std::ops::Range;

/// Splits `0..len` into `parts` contiguous ranges whose lengths differ by
/// at most one. Panics when `parts == 0`.
pub fn block_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "cannot partition into zero parts");
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// A block distribution of one cube axis over a task's nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AxisPartition {
    /// Which axis (0, 1 or 2) is distributed.
    pub axis: usize,
    /// Per-node ranges along that axis (one entry per node).
    pub ranges: Vec<Range<usize>>,
}

impl AxisPartition {
    /// A balanced block distribution of `len` elements of `axis` over
    /// `nodes` nodes.
    pub fn block(axis: usize, len: usize, nodes: usize) -> Self {
        assert!(axis < 3, "axis out of range");
        AxisPartition {
            axis,
            ranges: block_ranges(len, nodes),
        }
    }

    /// Number of nodes in the distribution.
    pub fn nodes(&self) -> usize {
        self.ranges.len()
    }

    /// The axis range node `p` owns.
    pub fn range_of(&self, p: usize) -> Range<usize> {
        self.ranges[p].clone()
    }

    /// Total axis length covered.
    pub fn len(&self) -> usize {
        self.ranges.last().map_or(0, |r| r.end)
    }

    /// True when the partition covers no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The node owning axis index `i`, by binary search.
    pub fn owner_of(&self, i: usize) -> usize {
        debug_assert!(i < self.len());
        self.ranges.partition_point(|r| r.end <= i)
    }

    /// The full local shape node `p` sees for a cube of `global` shape.
    pub fn local_shape(&self, global: [usize; 3], p: usize) -> [usize; 3] {
        let mut s = global;
        s[self.axis] = self.ranges[p].len();
        s
    }
}

/// Intersection of two ranges (empty ranges normalize to `0..0`).
pub fn intersect(a: &Range<usize>, b: &Range<usize>) -> Range<usize> {
    let start = a.start.max(b.start);
    let end = a.end.min(b.end);
    if start >= end {
        0..0
    } else {
        start..end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split() {
        let r = block_ranges(512, 8);
        assert_eq!(r.len(), 8);
        assert!(r.iter().all(|x| x.len() == 64));
        assert_eq!(r[0], 0..64);
        assert_eq!(r[7], 448..512);
    }

    #[test]
    fn uneven_split_differs_by_at_most_one() {
        let r = block_ranges(128, 28);
        let total: usize = r.iter().map(|x| x.len()).sum();
        assert_eq!(total, 128);
        let min = r.iter().map(|x| x.len()).min().unwrap();
        let max = r.iter().map(|x| x.len()).max().unwrap();
        assert!(max - min <= 1);
        // Contiguous and ordered.
        for w in r.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn more_parts_than_elements_yields_empty_tails() {
        let r = block_ranges(3, 5);
        assert_eq!(r.iter().filter(|x| !x.is_empty()).count(), 3);
        let total: usize = r.iter().map(|x| x.len()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn owner_of_is_consistent_with_ranges() {
        let p = AxisPartition::block(0, 100, 7);
        for i in 0..100 {
            let o = p.owner_of(i);
            assert!(p.range_of(o).contains(&i), "index {i} owner {o}");
        }
    }

    #[test]
    fn local_shape_replaces_partitioned_axis() {
        let p = AxisPartition::block(1, 32, 4);
        assert_eq!(p.local_shape([512, 32, 128], 0), [512, 8, 128]);
    }

    #[test]
    fn intersect_cases() {
        assert_eq!(intersect(&(0..10), &(5..15)), 5..10);
        assert_eq!(intersect(&(0..5), &(5..10)), 0..0);
        assert_eq!(intersect(&(3..4), &(0..10)), 3..4);
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn zero_parts_panics() {
        block_ranges(10, 0);
    }
}
