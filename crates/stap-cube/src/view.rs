//! Borrowed sub-cube views: zero-copy windows into a [`Cube`].
//!
//! A [`CubeView`] designates a rectangular region of a cube without
//! copying it — the read-side complement of [`Cube::extract`]. Views are
//! what a task hands to a kernel when the kernel only needs to *read* a
//! slab (the pipeline's pack routines copy exactly once, from a view
//! into the outgoing buffer). Lanes of a view are contiguous slices of
//! the parent, so FFT-style kernels keep their unit-stride access.

use crate::cube::Cube;
use std::ops::Range;

/// An immutable rectangular window into a [`Cube`].
#[derive(Clone, Copy)]
pub struct CubeView<'a, T> {
    parent: &'a Cube<T>,
    origin: [usize; 3],
    shape: [usize; 3],
}

impl<'a, T: Copy + Default> CubeView<'a, T> {
    /// Creates a view of `parent` covering the given ranges. Panics when
    /// any range exceeds the parent's shape.
    pub fn new(parent: &'a Cube<T>, r0: Range<usize>, r1: Range<usize>, r2: Range<usize>) -> Self {
        let ps = parent.shape();
        assert!(
            r0.end <= ps[0] && r1.end <= ps[1] && r2.end <= ps[2],
            "view out of bounds: ({r0:?}, {r1:?}, {r2:?}) in {ps:?}"
        );
        CubeView {
            parent,
            origin: [r0.start, r1.start, r2.start],
            shape: [r0.len(), r1.len(), r2.len()],
        }
    }

    /// The view's shape.
    pub fn shape(&self) -> [usize; 3] {
        self.shape
    }

    /// Number of elements in the view.
    pub fn len(&self) -> usize {
        self.shape[0] * self.shape[1] * self.shape[2]
    }

    /// True when the view covers no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element at view-relative coordinates.
    pub fn get(&self, i: usize, j: usize, k: usize) -> T {
        debug_assert!(i < self.shape[0] && j < self.shape[1] && k < self.shape[2]);
        self.parent[(self.origin[0] + i, self.origin[1] + j, self.origin[2] + k)]
    }

    /// The contiguous lane `view[i, j, ..]` as a slice of the parent.
    pub fn lane(&self, i: usize, j: usize) -> &'a [T] {
        debug_assert!(i < self.shape[0] && j < self.shape[1]);
        let full = self.parent.lane(self.origin[0] + i, self.origin[1] + j);
        &full[self.origin[2]..self.origin[2] + self.shape[2]]
    }

    /// Iterates `(i, j, lane)` over all lanes in storage order.
    pub fn lanes(&self) -> impl Iterator<Item = (usize, usize, &'a [T])> + '_ {
        let (d0, d1) = (self.shape[0], self.shape[1]);
        (0..d0).flat_map(move |i| (0..d1).map(move |j| (i, j, self.lane(i, j))))
    }

    /// Materializes the view into an owned cube (equivalent to
    /// `parent.extract(..)`).
    pub fn to_cube(&self) -> Cube<T> {
        Cube::from_fn(self.shape, |i, j, k| self.get(i, j, k))
    }

    /// A sub-view of this view (ranges relative to the view).
    pub fn subview(&self, r0: Range<usize>, r1: Range<usize>, r2: Range<usize>) -> CubeView<'a, T> {
        assert!(
            r0.end <= self.shape[0] && r1.end <= self.shape[1] && r2.end <= self.shape[2],
            "subview out of bounds"
        );
        CubeView {
            parent: self.parent,
            origin: [
                self.origin[0] + r0.start,
                self.origin[1] + r1.start,
                self.origin[2] + r2.start,
            ],
            shape: [r0.len(), r1.len(), r2.len()],
        }
    }
}

impl<T: Copy + Default> Cube<T> {
    /// A zero-copy view of the given region.
    pub fn view(&self, r0: Range<usize>, r1: Range<usize>, r2: Range<usize>) -> CubeView<'_, T> {
        CubeView::new(self, r0, r1, r2)
    }

    /// A view of the whole cube.
    pub fn full_view(&self) -> CubeView<'_, T> {
        let s = self.shape();
        CubeView::new(self, 0..s[0], 0..s[1], 0..s[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numbered(shape: [usize; 3]) -> Cube<f64> {
        let mut c = 0.0;
        Cube::from_fn(shape, |_, _, _| {
            c += 1.0;
            c
        })
    }

    #[test]
    fn view_matches_extract() {
        let c = numbered([5, 4, 6]);
        let v = c.view(1..4, 0..3, 2..6);
        let e = c.extract(1..4, 0..3, 2..6);
        assert_eq!(v.shape(), e.shape());
        assert_eq!(v.to_cube(), e);
    }

    #[test]
    fn lanes_are_contiguous_parent_slices() {
        let c = numbered([3, 3, 8]);
        let v = c.view(1..3, 1..3, 2..7);
        let lane = v.lane(0, 0);
        assert_eq!(lane.len(), 5);
        assert_eq!(lane[0], c[(1, 1, 2)]);
        assert_eq!(lane[4], c[(1, 1, 6)]);
        // Identity of memory: same address as the parent's lane slice.
        let parent_lane = &c.lane(1, 1)[2..7];
        assert!(std::ptr::eq(lane, parent_lane));
    }

    #[test]
    fn lane_iteration_covers_all_lanes_in_order() {
        let c = numbered([2, 3, 4]);
        let v = c.full_view();
        let seen: Vec<(usize, usize)> = v.lanes().map(|(i, j, _)| (i, j)).collect();
        assert_eq!(seen, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]);
        let total: f64 = v.lanes().map(|(_, _, l)| l.iter().sum::<f64>()).sum();
        assert_eq!(total, (24 * 25 / 2) as f64);
    }

    #[test]
    fn subview_composes_offsets() {
        let c = numbered([6, 6, 6]);
        let v = c.view(1..5, 1..5, 1..5);
        let sv = v.subview(1..3, 2..4, 0..2);
        assert_eq!(sv.shape(), [2, 2, 2]);
        assert_eq!(sv.get(0, 0, 0), c[(2, 3, 1)]);
        assert_eq!(sv.get(1, 1, 1), c[(3, 4, 2)]);
    }

    #[test]
    fn empty_view_is_fine() {
        let c = numbered([3, 3, 3]);
        let v = c.view(1..1, 0..3, 0..3);
        assert!(v.is_empty());
        assert_eq!(v.lanes().count(), 0);
    }

    #[test]
    #[should_panic(expected = "view out of bounds")]
    fn out_of_bounds_view_panics() {
        let c = numbered([2, 2, 2]);
        let _ = c.view(0..3, 0..1, 0..1);
    }

    #[test]
    #[should_panic(expected = "subview out of bounds")]
    fn out_of_bounds_subview_panics() {
        let c = numbered([4, 4, 4]);
        let v = c.view(0..2, 0..2, 0..2);
        let _ = v.subview(0..3, 0..1, 0..1);
    }
}
