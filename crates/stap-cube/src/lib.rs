//! 3-D data cubes and parallel redistribution plans.
//!
//! A CPI travels through the STAP pipeline as a sequence of 3-D cubes in
//! task-specific layouts:
//!
//! * raw CPI `(K range, J channel, N pulse)` — unit stride along pulses so
//!   Doppler FFTs stream contiguous memory,
//! * staggered Doppler output `(K, 2J, N)`,
//! * beamformer input `(N, K, 2J)` — the *reorganized* layout of Fig. 8,
//! * beamformed output `(N, M, K)`, pulse-compressed power `(N, M, K)`.
//!
//! Tasks partition these cubes along different axes (Doppler filtering
//! along `K`, everything downstream along `N`), which forces the
//! *all-to-all personalized* redistribution with per-message packing the
//! paper spends Section 5 on. [`RedistPlan`] computes exactly which
//! sub-block every (sender, receiver) pair exchanges and
//! [`Cube::extract_permuted`] performs the strided "data reorganization"
//! copy.

pub mod cube;
pub mod partition;
pub mod pool;
pub mod redist;
pub mod view;

pub use cube::{CCube, Cube, RCube};
pub use partition::{block_ranges, AxisPartition};
pub use pool::{BufferPool, PoolStats, SharedBufferPool};
pub use redist::{RedistBlock, RedistPlan};
pub use view::CubeView;
