//! All-to-all personalized redistribution plans.
//!
//! "Due to different partitioning strategies, an all-to-all personalized
//! communication scheme is required for data redistribution from the
//! Doppler filter processing task to the weight computation task."
//!
//! A [`RedistPlan`] describes how a cube distributed along one axis over
//! `P_src` nodes becomes a (possibly axis-permuted) cube distributed along
//! another axis over `P_dst` nodes. For every (sender, receiver) pair it
//! records the sub-block to extract — in *source* coordinates — and where
//! it lands in the receiver's local cube (destination coordinates).
//! Senders use [`Cube::extract_permuted`] to pack (collection +
//! reorganization in one strided pass); receivers use [`Cube::place`].
//!
//! The plan is pure metadata, so the same object drives both the real
//! threaded runtime (`stap-mp`) and the Paragon-scale discrete-event
//! simulator (`stap-sim`), which charges the machine model per block.
//!
//! **Packing cost**: the pack is a strided gather whose cost depends on
//! the permutation. [`Cube::extract_permuted_into`] applies a *run
//! fusion rule* — when the output's inner axis is source-contiguous
//! (`perm[2] == 2`) the gather collapses into maximal `copy_from_slice`
//! runs, folding outer axes in while strides chain; otherwise (e.g. the
//! Doppler→beamform `perm = [2, 0, 1]`, whose runs are all length 1) it
//! falls back to a 16x16 transpose-blocked gather so each tile reuses
//! the source cache lines it pulls. See `Cube::extract_permuted_into`
//! for the precise rule.

//! ```
//! use stap_cube::{AxisPartition, Cube, RedistPlan};
//!
//! // (K, J, N) on 4 nodes along K -> (N, K, J) on 2 nodes along N.
//! let plan = RedistPlan::new(
//!     [16, 4, 8],
//!     AxisPartition::block(0, 16, 4),
//!     AxisPartition::block(0, 8, 2),
//!     [2, 0, 1],
//! );
//! // Every sender talks to every receiver, and nothing is lost:
//! assert_eq!(plan.blocks.len(), 8);
//! let total: usize = plan.blocks.iter().map(|b| b.elements).sum();
//! assert_eq!(total, 16 * 4 * 8);
//! ```

use crate::cube::Cube;
use crate::partition::{intersect, AxisPartition};
use std::ops::Range;

/// One sender-to-receiver transfer within a redistribution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RedistBlock {
    /// Sending node within the source task.
    pub src: usize,
    /// Receiving node within the destination task.
    pub dst: usize,
    /// Block to extract, in global *source* coordinates.
    pub src_ranges: [Range<usize>; 3],
    /// Where the (permuted) block lands in the receiver's local cube.
    pub dst_offset: [usize; 3],
    /// Number of elements in the block.
    pub elements: usize,
}

/// A complete redistribution: source partition, destination partition,
/// axis permutation, and the per-pair transfer blocks.
#[derive(Clone, Debug)]
pub struct RedistPlan {
    /// Global shape in source coordinates.
    pub src_shape: [usize; 3],
    /// Global shape after permutation (destination coordinates).
    pub dst_shape: [usize; 3],
    /// Output axis `i` is source axis `perm[i]`.
    pub perm: [usize; 3],
    /// How the source task distributes its cube.
    pub src_part: AxisPartition,
    /// How the destination task distributes the permuted cube.
    pub dst_part: AxisPartition,
    /// All non-empty transfers.
    pub blocks: Vec<RedistBlock>,
}

impl RedistPlan {
    /// Plans the redistribution of a `src_shape` cube, distributed by
    /// `src_part`, into the `perm`-permuted layout distributed by
    /// `dst_part` (whose axis refers to *destination* coordinates).
    pub fn new(
        src_shape: [usize; 3],
        src_part: AxisPartition,
        dst_part: AxisPartition,
        perm: [usize; 3],
    ) -> Self {
        let dst_shape = [src_shape[perm[0]], src_shape[perm[1]], src_shape[perm[2]]];
        assert_eq!(
            src_part.len(),
            src_shape[src_part.axis],
            "source partition does not cover its axis"
        );
        assert_eq!(
            dst_part.len(),
            dst_shape[dst_part.axis],
            "destination partition does not cover its axis"
        );
        // The destination's distributed axis, expressed in source coords.
        let dst_axis_src = perm[dst_part.axis];
        let mut blocks = Vec::new();
        for (src, s_range) in src_part.ranges.iter().enumerate() {
            for (dst, d_range) in dst_part.ranges.iter().enumerate() {
                // Block owned by sender along src axis, needed by receiver
                // along (source-coord) destination axis.
                let mut ranges = [0..src_shape[0], 0..src_shape[1], 0..src_shape[2]];
                ranges[src_part.axis] = s_range.clone();
                if src_part.axis == dst_axis_src {
                    ranges[src_part.axis] = intersect(s_range, d_range);
                } else {
                    ranges[dst_axis_src] = d_range.clone();
                }
                let elements: usize = ranges.iter().map(|r| r.len()).product();
                if elements == 0 {
                    continue;
                }
                // Receiver-local offset: permute the block start, subtract
                // the receiver's own origin on its distributed axis.
                let mut dst_offset = [
                    ranges[perm[0]].start,
                    ranges[perm[1]].start,
                    ranges[perm[2]].start,
                ];
                dst_offset[dst_part.axis] -= d_range.start;
                // Axes the destination does NOT distribute span the full
                // global extent locally, so their offsets stay global...
                // except the *source* distributed axis, which is global in
                // the receiver's cube too (receivers assemble the full
                // extent of every non-distributed axis).
                blocks.push(RedistBlock {
                    src,
                    dst,
                    src_ranges: ranges,
                    dst_offset,
                    elements,
                });
            }
        }
        RedistPlan {
            src_shape,
            dst_shape,
            perm,
            src_part,
            dst_part,
            blocks,
        }
    }

    /// The local (permuted) shape receiver `p` assembles.
    pub fn dst_local_shape(&self, p: usize) -> [usize; 3] {
        self.dst_part.local_shape(self.dst_shape, p)
    }

    /// The local (source-layout) shape sender `p` holds.
    pub fn src_local_shape(&self, p: usize) -> [usize; 3] {
        self.src_part.local_shape(self.src_shape, p)
    }

    /// Transfers sent by node `src`.
    pub fn sends_of(&self, src: usize) -> impl Iterator<Item = &RedistBlock> {
        self.blocks.iter().filter(move |b| b.src == src)
    }

    /// Transfers received by node `dst`.
    pub fn recvs_of(&self, dst: usize) -> impl Iterator<Item = &RedistBlock> {
        self.blocks.iter().filter(move |b| b.dst == dst)
    }

    /// Total elements sender `src` ships.
    pub fn send_elements(&self, src: usize) -> usize {
        self.sends_of(src).map(|b| b.elements).sum()
    }

    /// Total elements receiver `dst` assembles.
    pub fn recv_elements(&self, dst: usize) -> usize {
        self.recvs_of(dst).map(|b| b.elements).sum()
    }

    /// Packs the message sender `src` must ship for `block`, given the
    /// sender's *local* cube (its slab of the global source cube).
    pub fn pack<T: Copy + Default>(&self, block: &RedistBlock, local: &Cube<T>) -> Cube<T> {
        let own = self.src_part.range_of(block.src);
        let mut r = block.src_ranges.clone();
        // Convert the distributed axis to sender-local coordinates.
        r[self.src_part.axis] =
            (r[self.src_part.axis].start - own.start)..(r[self.src_part.axis].end - own.start);
        local.extract_permuted(r[0].clone(), r[1].clone(), r[2].clone(), self.perm)
    }

    /// Like [`RedistPlan::pack`] but drawing the message buffer from a
    /// recycling pool: the steady-state pipeline's allocation-free pack
    /// path. Byte-identical to [`RedistPlan::pack`].
    pub fn pack_with<T: Copy + Default>(
        &self,
        block: &RedistBlock,
        local: &Cube<T>,
        pool: &crate::pool::SharedBufferPool<T>,
    ) -> Cube<T> {
        let own = self.src_part.range_of(block.src);
        let mut r = block.src_ranges.clone();
        r[self.src_part.axis] =
            (r[self.src_part.axis].start - own.start)..(r[self.src_part.axis].end - own.start);
        local.extract_permuted_into(
            r[0].clone(),
            r[1].clone(),
            r[2].clone(),
            self.perm,
            pool.get(block.elements),
        )
    }

    /// Unpacks a received message into the receiver's local cube.
    pub fn unpack<T: Copy + Default>(
        &self,
        block: &RedistBlock,
        message: &Cube<T>,
        local: &mut Cube<T>,
    ) {
        local.place(block.dst_offset, message);
    }

    /// Unpacks a received message and retires its buffer to `pool` —
    /// what a receiving node does with every consumed message so the
    /// pool stays balanced.
    pub fn unpack_recycling<T: Copy + Default>(
        &self,
        block: &RedistBlock,
        message: Cube<T>,
        local: &mut Cube<T>,
        pool: &crate::pool::SharedBufferPool<T>,
    ) {
        local.place(block.dst_offset, &message);
        pool.recycle(message);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::Cube;

    /// Runs a full redistribution "by hand" over in-memory nodes and
    /// checks the receivers jointly reassemble the permuted cube.
    fn roundtrip(
        shape: [usize; 3],
        src_part: AxisPartition,
        dst_part: AxisPartition,
        perm: [usize; 3],
    ) {
        let global = Cube::from_fn(shape, |i, j, k| (i * 10_000 + j * 100 + k) as f64);
        let plan = RedistPlan::new(shape, src_part.clone(), dst_part.clone(), perm);

        // Scatter: each source node owns its slab.
        let locals: Vec<Cube<f64>> = (0..src_part.nodes())
            .map(|p| {
                let mut r = [0..shape[0], 0..shape[1], 0..shape[2]];
                r[src_part.axis] = src_part.range_of(p);
                global.extract(r[0].clone(), r[1].clone(), r[2].clone())
            })
            .collect();

        // Exchange.
        let mut dst_cubes: Vec<Cube<f64>> = (0..dst_part.nodes())
            .map(|p| Cube::zeros(plan.dst_local_shape(p)))
            .collect();
        for block in &plan.blocks {
            let msg = plan.pack(block, &locals[block.src]);
            plan.unpack(block, &msg, &mut dst_cubes[block.dst]);
        }

        // Verify against the directly permuted global cube.
        let want = global.permute(perm);
        for p in 0..dst_part.nodes() {
            let own = dst_part.range_of(p);
            let mut r = [0..want.shape()[0], 0..want.shape()[1], 0..want.shape()[2]];
            r[dst_part.axis] = own;
            let expected = want.extract(r[0].clone(), r[1].clone(), r[2].clone());
            assert_eq!(dst_cubes[p], expected, "receiver {p} mismatch");
        }
    }

    #[test]
    fn k_to_n_with_reorganization_like_doppler_to_beamforming() {
        // (K, 2J, N) partitioned on K=axis0 over 4 nodes, redistributed to
        // (N, K, 2J) partitioned on N=axis0 over 3 nodes. perm maps
        // out axes (N,K,2J) = src axes (2,0,1).
        roundtrip(
            [16, 8, 12],
            AxisPartition::block(0, 16, 4),
            AxisPartition::block(0, 12, 3),
            [2, 0, 1],
        );
    }

    #[test]
    fn same_axis_same_layout_is_block_exchange() {
        // Beamforming -> pulse compression: both partition N, no permute.
        roundtrip(
            [12, 6, 10],
            AxisPartition::block(0, 12, 4),
            AxisPartition::block(0, 12, 2),
            [0, 1, 2],
        );
    }

    #[test]
    fn identical_partitions_are_pure_local_copies() {
        let plan = RedistPlan::new(
            [12, 6, 10],
            AxisPartition::block(0, 12, 4),
            AxisPartition::block(0, 12, 4),
            [0, 1, 2],
        );
        // Every block must be a self-send.
        assert!(plan.blocks.iter().all(|b| b.src == b.dst));
        assert_eq!(plan.blocks.len(), 4);
    }

    #[test]
    fn uneven_node_counts() {
        roundtrip(
            [13, 5, 9],
            AxisPartition::block(1, 5, 3),
            AxisPartition::block(2, 5, 2),
            [2, 0, 1],
        );
    }

    #[test]
    fn single_node_to_many() {
        roundtrip(
            [8, 4, 6],
            AxisPartition::block(0, 8, 1),
            AxisPartition::block(0, 6, 5),
            [2, 1, 0],
        );
    }

    #[test]
    fn many_to_single_node() {
        roundtrip(
            [8, 4, 6],
            AxisPartition::block(2, 6, 6),
            AxisPartition::block(1, 4, 1),
            [0, 1, 2],
        );
    }

    #[test]
    fn element_accounting_is_conservative() {
        let plan = RedistPlan::new(
            [16, 8, 12],
            AxisPartition::block(0, 16, 4),
            AxisPartition::block(0, 12, 3),
            [2, 0, 1],
        );
        let total: usize = plan.blocks.iter().map(|b| b.elements).sum();
        assert_eq!(total, 16 * 8 * 12);
        let sends: usize = (0..4).map(|p| plan.send_elements(p)).sum();
        let recvs: usize = (0..3).map(|p| plan.recv_elements(p)).sum();
        assert_eq!(sends, total);
        assert_eq!(recvs, total);
    }

    #[test]
    fn all_to_all_pairs_present_when_axes_differ() {
        let plan = RedistPlan::new(
            [16, 8, 12],
            AxisPartition::block(0, 16, 4),
            AxisPartition::block(0, 12, 3),
            [2, 0, 1],
        );
        // Every sender talks to every receiver: 4 * 3 blocks.
        assert_eq!(plan.blocks.len(), 12);
    }
}
